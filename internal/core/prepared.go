package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/lru"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/value"
)

// PreparedStmt is a statement parsed and (for SELECTs) optimized once,
// executed many times with bound parameter values — the XPRS-style
// compile-once discipline of paper §2.2 applied at the statement level.
// A PreparedStmt is safe for concurrent use: executions never mutate the
// compiled form, and a schema change detected via the catalog version
// counter swaps in a fresh compilation under the statement's lock.
type PreparedStmt struct {
	e    *Engine
	text string
	auto bool // built by the plan cache's literal auto-parameterization

	mu       sync.Mutex // serializes replans only
	compiled atomic.Pointer[compiledStmt]
}

// newPreparedStmt wraps one compilation in an executable handle.
func newPreparedStmt(e *Engine, text string, auto bool, cs *compiledStmt) *PreparedStmt {
	ps := &PreparedStmt{e: e, text: text, auto: auto}
	ps.compiled.Store(cs)
	return ps
}

// compiledStmt is one immutable compilation of a statement.
type compiledStmt struct {
	nParams int
	kinds   []value.Kind // expected kind per slot (KindNull = unknown)
	catVer  uint64       // catalog version this compilation is valid for
	sel     plan.Node    // optimized plan (SELECT only)
	planStr string       // pre-rendered plan (parameters shown as $n)
	ast     sqlparse.Stmt
	// access lists the tables the statement touches for the
	// per-execution grant check (SELECT plans only — AST statements
	// check in execStmt). Recorded at compile time so a cached shared
	// plan still enforces each executing session's own grants.
	access []tableAccess
}

// Text returns the statement's SQL source.
func (ps *PreparedStmt) Text() string { return ps.text }

// NumParams returns the statement's parameter arity.
func (ps *PreparedStmt) NumParams() int { return ps.compiled.Load().nParams }

// current returns a compilation valid for the present catalog version,
// transparently re-preparing after DDL invalidated the cached plan.
// The fast path is two atomic loads; ps.mu guards only replans.
func (ps *PreparedStmt) current() (*compiledStmt, error) {
	ver := ps.e.cat.Version()
	if cs := ps.compiled.Load(); cs != nil && cs.catVer == ver {
		return cs, nil
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if cs := ps.compiled.Load(); cs != nil && cs.catVer == ver {
		return cs, nil // another execution replanned first
	}
	var cs *compiledStmt
	var err error
	if ps.auto {
		cs, _, err = ps.e.compileAuto(ps.text)
	} else {
		cs, err = ps.e.compileText(ps.text)
	}
	if err != nil {
		return nil, fmt.Errorf("core: replan after schema change: %w", err)
	}
	ps.compiled.Store(cs)
	return cs, nil
}

// Prepare parses and plans one statement with '?' or '$n' placeholders.
// The returned handle is bound to the engine, not the session; any
// session may execute it.
func (s *Session) Prepare(sql string) (*PreparedStmt, error) {
	cs, err := s.e.compileText(sql)
	if err != nil {
		return nil, err
	}
	return newPreparedStmt(s.e, sql, false, cs), nil
}

// ExecPrepared executes a prepared statement with the given parameter
// values (one per slot, in order).
func (s *Session) ExecPrepared(ps *PreparedStmt, args []value.Value) (*Result, error) {
	wallStart := time.Now()
	simStart := s.e.m.MaxClock()
	res, err := s.execPrepared(ps, args)
	if err != nil {
		return nil, err
	}
	res.WallTime = time.Since(wallStart)
	res.SimTime = s.e.m.MaxClock() - simStart
	return res, nil
}

// QueryPrepared is ExecPrepared returning just the relation.
func (s *Session) QueryPrepared(ps *PreparedStmt, args []value.Value) (*value.Relation, error) {
	res, err := s.ExecPrepared(ps, args)
	if err != nil {
		return nil, err
	}
	if res.Rel == nil {
		return nil, fmt.Errorf("core: statement produced no relation")
	}
	return res.Rel, nil
}

// execPrepared runs one execution: version check, arity/kind validation,
// parameter substitution into a fresh plan/AST copy, execution.
func (s *Session) execPrepared(ps *PreparedStmt, args []value.Value) (*Result, error) {
	cs, err := ps.current()
	if err != nil {
		return nil, err
	}
	if len(args) != cs.nParams {
		return nil, fmt.Errorf("core: statement wants %d parameters, got %d", cs.nParams, len(args))
	}
	// Explicit prepared statements coerce lossless numeric binds; the
	// auto-parameterized path is strict, so any kind mismatch becomes
	// errBindKind and the statement re-runs uncached with the exact
	// semantics the literal would have had without the cache (Conform
	// rejecting a FLOAT insert into an INT column, numeric comparison
	// across kinds, and so on).
	bound, err := coerceArgs(args, cs.kinds, ps.auto)
	if err != nil {
		return nil, err
	}
	if cs.sel != nil {
		if err := s.checkAccess(cs.access); err != nil {
			return nil, err
		}
		root := cs.sel
		if cs.nParams > 0 {
			root, err = bindPlan(root, bound)
			if err != nil {
				return nil, err
			}
		}
		return s.runSelectPlanStr(root, cs.planStr)
	}
	st := cs.ast
	if cs.nParams > 0 {
		st, err = substStmt(st, bound)
		if err != nil {
			return nil, err
		}
	}
	return s.execStmt(st)
}

// compileText parses sql (placeholders allowed) and compiles it.
func (e *Engine) compileText(sql string) (*compiledStmt, error) {
	st, nparams, err := sqlparse.ParseStmt(sql)
	if err != nil {
		return nil, err
	}
	return e.compileParsed(st, nparams)
}

// compileAuto builds the plan-cache form of an unparameterized
// statement: parse, lift literal constants into parameter slots, verify
// the lifted values line up with what Normalize extracts from the text,
// then compile.
func (e *Engine) compileAuto(sql string) (*compiledStmt, []value.Value, error) {
	_, lits, ok := sqlparse.Normalize(sql)
	if !ok {
		return nil, nil, errNotCacheable
	}
	return e.compileAutoFrom(sql, lits)
}

// compileAutoFrom is compileAuto for a caller that already normalized
// the text (the plan-cache miss path, which needed the key anyway).
func (e *Engine) compileAutoFrom(sql string, lits []value.Value) (*compiledStmt, []value.Value, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	pst, vals, pok := sqlparse.Parameterize(st)
	if !pok || !literalsMatch(vals, lits) {
		return nil, nil, errNotCacheable
	}
	cs, err := e.compileParsed(pst, len(vals))
	if err != nil {
		return nil, nil, err
	}
	return cs, lits, nil
}

// errNotCacheable marks statements the plan cache must not hold.
var errNotCacheable = fmt.Errorf("core: statement is not plan-cacheable")

// errBindKind tags parameter-kind failures from coerceArgs. Explicit
// prepared statements surface it to the caller; the plan cache's
// auto-parameterized path must instead fall back to the uncached
// execution so that caching never changes a legal statement's outcome
// (`WHERE id = 1.5` on an INT key is an empty result, not an error).
var errBindKind = fmt.Errorf("core: parameter kind mismatch")

// literalsMatch reports whether the AST-lifted constants equal the
// token-level literals, position by position — the safety interlock
// between Parameterize and Normalize.
func literalsMatch(vals, lits []value.Value) bool {
	if len(vals) != len(lits) {
		return false
	}
	for i := range vals {
		if vals[i].Kind() != lits[i].Kind() || !value.Equal(vals[i], lits[i]) {
			return false
		}
	}
	return true
}

// compileParsed compiles a parsed statement: SELECTs translate and
// optimize to a plan; everything else keeps its AST. Parameter kinds are
// inferred for bind-time validation.
func (e *Engine) compileParsed(st sqlparse.Stmt, nparams int) (*compiledStmt, error) {
	cs := &compiledStmt{
		nParams: nparams,
		kinds:   make([]value.Kind, nparams),
		catVer:  e.cat.Version(),
	}
	if sel, ok := st.(*sqlparse.Select); ok {
		root, err := e.translateSelect(sel)
		if err != nil {
			return nil, err
		}
		root = e.opt.Optimize(root)
		cs.sel = root
		cs.planStr = plan.Format(root)
		cs.access = stmtAccess(sel)
		inferPlanParamKinds(root, cs.kinds)
		return cs, nil
	}
	cs.ast = st
	e.inferStmtParamKinds(st, cs.kinds)
	return cs, nil
}

// runSelectPlan executes an already-optimized plan under the session's
// transaction discipline (explicit txn or autocommit).
func (s *Session) runSelectPlan(root plan.Node) (*Result, error) {
	return s.runSelectPlanStr(root, plan.Format(root))
}

// runSelectPlanStr is runSelectPlan with a pre-rendered plan string
// (prepared executions render once at compile time, not per execution).
// Under MVCC the read runs against a pinned snapshot with no
// transaction and no locks; under 2PL it runs inside a (possibly
// autocommit) transaction holding shared locks.
func (s *Session) runSelectPlanStr(root plan.Node, planStr string) (*Result, error) {
	tx, view, finish, err := s.readView()
	if err != nil {
		return nil, err
	}
	rel, execErr := s.e.execPlan(s, tx, view, root)
	if err := finish(execErr); err != nil {
		return nil, err
	}
	return &Result{Rel: rel, Plan: planStr}, nil
}

// ---------- parameter kind inference and coercion ----------

// inferPlanParamKinds walks a compiled plan's expressions, recording the
// expected kind of each parameter slot.
func inferPlanParamKinds(root plan.Node, kinds []value.Kind) {
	if len(kinds) == 0 {
		return
	}
	plan.Walk(root, func(n plan.Node) {
		switch t := n.(type) {
		case *plan.Scan:
			if t.Pred != nil {
				expr.InferParamKinds(t.Pred, kinds)
			}
		case *plan.IndexProbe:
			if p, ok := t.Key.(*expr.Param); ok && p.Ord < len(kinds) {
				kinds[p.Ord] = t.Out.Column(t.Col).Kind
			}
			if t.Rest != nil {
				expr.InferParamKinds(t.Rest, kinds)
			}
		case *plan.Select:
			expr.InferParamKinds(t.Pred, kinds)
		case *plan.Join:
			if t.Residual != nil {
				expr.InferParamKinds(t.Residual, kinds)
			}
		case *plan.Project:
			for _, ex := range t.Exprs {
				expr.InferParamKinds(ex, kinds)
			}
		}
	})
}

// inferStmtParamKinds records expected kinds for DML parameters from the
// target table's schema (best effort: unknown tables or columns leave
// slots unknown and fail at execution instead).
func (e *Engine) inferStmtParamKinds(st sqlparse.Stmt, kinds []value.Kind) {
	if len(kinds) == 0 {
		return
	}
	learn := func(ex expr.Expr, k value.Kind) {
		if p, ok := ex.(*expr.Param); ok && p.Ord >= 0 && p.Ord < len(kinds) && kinds[p.Ord] == value.KindNull {
			kinds[p.Ord] = k
		}
	}
	inferWhere := func(w expr.Expr, schema *value.Schema) {
		if w == nil {
			return
		}
		bound := expr.Clone(w)
		if _, err := expr.Bind(bound, schema); err == nil {
			expr.InferParamKinds(bound, kinds)
		}
	}
	switch t := st.(type) {
	case *sqlparse.Insert:
		tab, err := e.cat.Get(t.Table)
		if err != nil {
			return
		}
		cols := t.Cols
		for _, row := range t.Rows {
			for j, ex := range row {
				ix := j
				if cols != nil {
					if j >= len(cols) {
						continue
					}
					ix = tab.Schema.Index(cols[j])
				}
				if ix >= 0 && ix < tab.Schema.Len() {
					learn(ex, tab.Schema.Column(ix).Kind)
				}
			}
		}
	case *sqlparse.Update:
		tab, err := e.cat.Get(t.Table)
		if err != nil {
			return
		}
		for _, sc := range t.Set {
			if ix := tab.Schema.Index(sc.Col); ix >= 0 {
				learn(sc.Expr, tab.Schema.Column(ix).Kind)
			}
			inferWhere(sc.Expr, tab.Schema)
		}
		inferWhere(t.Where, tab.Schema)
	case *sqlparse.Delete:
		tab, err := e.cat.Get(t.Table)
		if err != nil {
			return
		}
		inferWhere(t.Where, tab.Schema)
	}
}

// coerceArgs validates one value per slot against the inferred kinds.
// NULL binds any slot; numeric kinds interchange like SQL literals do
// (an integral FLOAT bound to an INT slot coerces so the index probe
// keys exactly; a fractional one passes through unchanged and takes
// the generic-comparison path, where `id = 99.5` is simply empty and
// `salary > 99.5` compares numerically); everything else — a string
// for an INT slot and the like — is an error. strict refuses every
// mismatch instead (the plan cache's mode: a mismatched literal must
// take the uncached path, not a coerced one).
func coerceArgs(args []value.Value, kinds []value.Kind, strict bool) ([]value.Value, error) {
	// Common case first: every value already matches (or has no
	// expectation); return the caller's slice without allocating.
	out := args
	copied := false
	for i, v := range args {
		want := value.KindNull
		if i < len(kinds) {
			want = kinds[i]
		}
		if v.IsNull() || want == value.KindNull || v.Kind() == want {
			if copied {
				out[i] = v
			}
			continue
		}
		if strict {
			// One coercion is safe even here: a small INT literal used
			// where a FLOAT is expected compares identically either
			// way, and without it a hot shape like `price > 100` on a
			// FLOAT column would fall back to the uncached path on
			// every execution.
			if want == value.KindFloat && v.Kind() == value.KindInt &&
				v.Int() >= -(1<<53) && v.Int() <= 1<<53 {
				if !copied {
					out = make([]value.Value, len(args))
					copy(out, args[:i])
					copied = true
				}
				out[i] = value.NewFloat(float64(v.Int()))
				continue
			}
			return nil, fmt.Errorf("%w: parameter $%d: %s value where %s is expected",
				errBindKind, i+1, v.Kind(), want)
		}
		if !copied {
			out = make([]value.Value, len(args))
			copy(out, args[:i])
			copied = true
		}
		switch {
		case want == value.KindFloat && v.Kind() == value.KindInt:
			out[i] = value.NewFloat(float64(v.Int()))
		case want == value.KindInt && v.Kind() == value.KindFloat:
			f := v.Float()
			if f != math.Trunc(f) || f < math.MinInt64 || f > math.MaxInt64 {
				out[i] = v // fractional: generic numeric comparison applies
			} else {
				out[i] = value.NewInt(int64(f))
			}
		default:
			return nil, fmt.Errorf("%w: parameter $%d: cannot bind %s value %s to %s",
				errBindKind, i+1, v.Kind(), v.Quoted(), want)
		}
	}
	return out, nil
}

// ---------- parameter substitution ----------

// bindPlan returns a copy of the plan with every Param replaced by its
// bound constant. Schemas, key lists and methods are shared (they are
// immutable during execution); only nodes and expressions are copied.
func bindPlan(n plan.Node, args []value.Value) (plan.Node, error) {
	sub := func(e expr.Expr) (expr.Expr, error) {
		if e == nil {
			return nil, nil
		}
		return expr.SubstParams(e, args)
	}
	switch t := n.(type) {
	case *plan.Scan:
		c := *t
		var err error
		if c.Pred, err = sub(t.Pred); err != nil {
			return nil, err
		}
		return &c, nil
	case *plan.IndexProbe:
		c := *t
		var err error
		if c.Key, err = sub(t.Key); err != nil {
			return nil, err
		}
		if c.Rest, err = sub(t.Rest); err != nil {
			return nil, err
		}
		return &c, nil
	case *plan.Select:
		c := *t
		var err error
		if c.Child, err = bindPlan(t.Child, args); err != nil {
			return nil, err
		}
		if c.Pred, err = sub(t.Pred); err != nil {
			return nil, err
		}
		return &c, nil
	case *plan.Project:
		c := *t
		var err error
		if c.Child, err = bindPlan(t.Child, args); err != nil {
			return nil, err
		}
		c.Exprs = make([]expr.Expr, len(t.Exprs))
		for i, ex := range t.Exprs {
			if c.Exprs[i], err = sub(ex); err != nil {
				return nil, err
			}
		}
		return &c, nil
	case *plan.Join:
		c := *t
		var err error
		if c.Left, err = bindPlan(t.Left, args); err != nil {
			return nil, err
		}
		if c.Right, err = bindPlan(t.Right, args); err != nil {
			return nil, err
		}
		if c.Residual, err = sub(t.Residual); err != nil {
			return nil, err
		}
		return &c, nil
	case *plan.Exchange:
		c := *t
		var err error
		if c.Child, err = bindPlan(t.Child, args); err != nil {
			return nil, err
		}
		return &c, nil
	case *plan.Aggregate:
		c := *t
		var err error
		if c.Child, err = bindPlan(t.Child, args); err != nil {
			return nil, err
		}
		return &c, nil
	case *plan.Sort:
		c := *t
		var err error
		if c.Child, err = bindPlan(t.Child, args); err != nil {
			return nil, err
		}
		return &c, nil
	case *plan.Distinct:
		c := *t
		var err error
		if c.Child, err = bindPlan(t.Child, args); err != nil {
			return nil, err
		}
		return &c, nil
	case *plan.Limit:
		c := *t
		var err error
		if c.Child, err = bindPlan(t.Child, args); err != nil {
			return nil, err
		}
		return &c, nil
	}
	return nil, fmt.Errorf("core: cannot bind parameters into plan node %T", n)
}

// substStmt returns a copy of a DML statement with parameters replaced
// by constants. Statements without expression positions pass through.
func substStmt(st sqlparse.Stmt, args []value.Value) (sqlparse.Stmt, error) {
	sub := func(e expr.Expr) (expr.Expr, error) {
		if e == nil {
			return nil, nil
		}
		return expr.SubstParams(e, args)
	}
	switch t := st.(type) {
	case *sqlparse.Insert:
		c := *t
		c.Rows = make([][]expr.Expr, len(t.Rows))
		for i, row := range t.Rows {
			c.Rows[i] = make([]expr.Expr, len(row))
			for j, ex := range row {
				var err error
				if c.Rows[i][j], err = sub(ex); err != nil {
					return nil, err
				}
			}
		}
		return &c, nil
	case *sqlparse.Update:
		c := *t
		c.Set = make([]sqlparse.SetClause, len(t.Set))
		var err error
		for i, sc := range t.Set {
			c.Set[i] = sc
			if c.Set[i].Expr, err = sub(sc.Expr); err != nil {
				return nil, err
			}
		}
		if c.Where, err = sub(t.Where); err != nil {
			return nil, err
		}
		return &c, nil
	case *sqlparse.Delete:
		c := *t
		var err error
		if c.Where, err = sub(t.Where); err != nil {
			return nil, err
		}
		return &c, nil
	}
	return st, nil
}

// ---------- engine plan cache ----------

// planCache is the engine-level LRU of auto-parameterized statements,
// keyed by normalized text. A nil PreparedStmt marks a statement shape
// as known non-cacheable so the parameterize attempt is not repeated.
type planCache struct {
	mu  sync.Mutex
	lru *lru.Cache[string, *PreparedStmt]
}

func newPlanCache(capacity int) *planCache {
	return &planCache{lru: lru.New[string, *PreparedStmt](capacity)}
}

// get returns the cached statement and whether the key was present.
func (pc *planCache) get(key string) (*PreparedStmt, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Get(key)
}

// put inserts or refreshes a key, evicting the least-recently-used
// entry beyond capacity.
func (pc *planCache) put(key string, ps *PreparedStmt) {
	pc.mu.Lock()
	pc.lru.Put(key, ps)
	pc.mu.Unlock()
}

// Len reports the number of cached statement shapes.
func (pc *planCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}
