package core

import (
	"testing"
)

// TestRecoveryVersionedCommits is the MVCC recovery net: after a crash
// wipes volatile fragment state, log replay must rebuild exactly the
// pre-crash committed state — commits (autocommit and multi-fragment
// explicit transactions) stamped with their original timestamps, a
// rolled-back transaction's writes absent, and a transaction still in
// flight at crash time gone entirely. The restarted commit clock must
// also have advanced past every recovered timestamp so new commits are
// immediately visible.
func TestRecoveryVersionedCommits(t *testing.T) {
	e, s := isoEngine(t)
	defer s.Close()

	// Committed history: an autocommit update, then a multi-fragment
	// explicit transaction (rows 2 and 3 hash to different fragments, so
	// the commit runs two-phase across participants).
	mustExec(t, s, `UPDATE acct SET bal = 150 WHERE id = 1`)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `UPDATE acct SET bal = bal - 40 WHERE id = 2`)
	mustExec(t, s, `UPDATE acct SET bal = bal + 40 WHERE id = 3`)
	mustExec(t, s, `COMMIT`)

	// A rolled-back transaction: its write must never resurface.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `UPDATE acct SET bal = 9999 WHERE id = 4`)
	mustExec(t, s, `ROLLBACK`)

	// A writer still in flight when the crash hits.
	inflight := e.NewSession()
	defer inflight.Close()
	mustExec(t, inflight, `BEGIN`)
	mustExec(t, inflight, `UPDATE acct SET bal = 8888 WHERE id = 4`)

	before, err := s.Query(`SELECT * FROM acct`)
	if err != nil {
		t.Fatal(err)
	}

	if err := e.CrashTable("acct"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RecoverTable("acct"); err != nil {
		t.Fatal(err)
	}
	// The in-flight writer died with the crash; its session rolls back,
	// releasing the exclusive lock it still holds.
	mustExec(t, inflight, `ROLLBACK`)

	// Post-recovery visibility == pre-crash committed state.
	after, err := s.Query(`SELECT * FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	if !after.SameSet(before) {
		t.Fatalf("recovery diverged: pre-crash %v, post-recovery %v", before.Tuples, after.Tuples)
	}
	for id, want := range map[int]int64{1: 150, 2: 160, 3: 340, 4: 400} {
		if got := balance(t, s, id); got != want {
			t.Errorf("post-recovery bal(%d) = %d, want %d", id, got, want)
		}
	}

	// The commit clock advanced past every recovered timestamp: a fresh
	// commit is visible to fresh snapshot reads right away.
	mustExec(t, s, `UPDATE acct SET bal = 555 WHERE id = 4`)
	if got := balance(t, s, 4); got != 555 {
		t.Errorf("post-recovery commit invisible: bal(4) = %d (commit clock behind recovered timestamps?)", got)
	}
	// And versioned reads inside a transaction still hold a stable
	// snapshot over the recovered store while new commits land.
	r := e.NewSession()
	defer r.Close()
	mustExec(t, r, `BEGIN`)
	if got := balance(t, r, 1); got != 150 {
		t.Fatalf("snapshot read over recovered store: bal(1) = %d", got)
	}
	mustExec(t, s, `UPDATE acct SET bal = 151 WHERE id = 1`)
	if got := balance(t, r, 1); got != 150 {
		t.Errorf("recovered store lost snapshot stability: bal(1) = %d", got)
	}
	mustExec(t, r, `COMMIT`)
	if got := balance(t, r, 1); got != 151 {
		t.Errorf("post-transaction read: bal(1) = %d", got)
	}
}
