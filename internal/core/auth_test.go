package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/value"
)

// bindUser authenticates name through the catalog and binds a fresh
// session to it.
func bindUser(t *testing.T, e *Engine, name, secret string) *Session {
	t.Helper()
	u, err := e.Catalog().Authenticate(name, secret)
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	t.Cleanup(s.Close)
	s.SetUser(u)
	return s
}

func TestAdminStatements(t *testing.T) {
	e := newEngine(t)
	admin := setupEmp(t, e)
	mustExec(t, admin, `CREATE USER t1 PASSWORD 'pw' PRIORITY batch MAX_CONCURRENT 3 MEM_BUDGET 1048576`)
	u, err := e.Catalog().GetUser("t1")
	if err != nil {
		t.Fatal(err)
	}
	if u.Priority != catalog.PriorityBatch || u.MaxConcurrent != 3 || u.MemBudget != 1<<20 || u.Admin {
		t.Errorf("CREATE USER attributes not applied: %+v", u)
	}
	mustExec(t, admin, `GRANT SELECT, INSERT ON emp TO t1`)
	if !u.Can("emp", catalog.PrivSelect) || !u.Can("emp", catalog.PrivInsert) || u.Can("emp", catalog.PrivDelete) {
		t.Errorf("GRANT privilege list misapplied: %v", u.Grants())
	}
	mustExec(t, admin, `REVOKE INSERT ON emp FROM t1`)
	if u.Can("emp", catalog.PrivInsert) {
		t.Errorf("REVOKE did not bite")
	}

	res := mustExec(t, admin, `SHOW USERS`)
	if res.Rel == nil || res.Rel.Len() != 1 {
		t.Fatalf("SHOW USERS rows = %v", res.Rel)
	}
	if rendered := res.Rel.Tuples[0][5].Str(); !strings.Contains(rendered, "SELECT ON emp") {
		t.Errorf("SHOW USERS grants column = %q", rendered)
	}

	// SHOW ADMISSION renders even with admission off.
	res = mustExec(t, admin, `SHOW ADMISSION`)
	if res.Msg != "admission control off" {
		t.Errorf("SHOW ADMISSION msg = %q", res.Msg)
	}

	mustExec(t, admin, `DROP USER t1`)
	if _, err := e.Catalog().GetUser("t1"); err == nil {
		t.Errorf("DROP USER did not bite")
	}
}

func TestAdminStatementsRequireAdmin(t *testing.T) {
	e := newEngine(t)
	admin := setupEmp(t, e)
	mustExec(t, admin, `CREATE USER plain PASSWORD 'pw'`)
	mustExec(t, admin, `CREATE USER root PASSWORD 'pw' ADMIN`)

	plain := bindUser(t, e, "plain", "pw")
	for _, sql := range []string{
		`CREATE USER evil PASSWORD 'x'`,
		`DROP USER root`,
		`GRANT ALL ON emp TO plain`,
		`REVOKE ALL ON emp FROM root`,
		`SHOW ADMISSION`,
		`SHOW USERS`,
	} {
		if _, err := plain.Exec(sql); !errors.Is(err, ErrAuth) {
			t.Errorf("Exec(%q) by non-admin err = %v, want ErrAuth", sql, err)
		}
	}

	// An admin user (not just local sessions) may administer.
	root := bindUser(t, e, "root", "pw")
	mustExec(t, root, `GRANT SELECT ON emp TO plain`)
}

func TestGrantEnforcement(t *testing.T) {
	e := newEngine(t)
	admin := setupEmp(t, e)
	mustExec(t, admin, `CREATE USER t1 PASSWORD 'pw'`)
	mustExec(t, admin, `GRANT SELECT ON emp TO t1`)

	s := bindUser(t, e, "t1", "pw")
	if _, err := s.Query(`SELECT id FROM emp WHERE id = 1`); err != nil {
		t.Fatalf("granted SELECT failed: %v", err)
	}
	// Each missing privilege is refused with the coded auth error.
	for _, sql := range []string{
		`INSERT INTO emp VALUES (999, 'eng', 1)`,
		`UPDATE emp SET salary = 0 WHERE id = 1`,
		`DELETE FROM emp WHERE id = 1`,
		`SELECT name FROM dept`,
		`SELECT e.id FROM emp e, dept d WHERE e.dept = d.name`,
		`DROP TABLE emp`,
	} {
		if _, err := s.Exec(sql); !errors.Is(err, ErrAuth) {
			t.Errorf("Exec(%q) err = %v, want ErrAuth", sql, err)
		}
	}

	// The creator of a table owns it.
	mustExec(t, s, `CREATE TABLE mine (k INT, PRIMARY KEY (k))`)
	mustExec(t, s, `INSERT INTO mine VALUES (1)`)
	mustExec(t, s, `DROP TABLE mine`)
}

// TestRevokeBitesCachedPlan pins the per-execution (not per-plan)
// grant check: the same statement text, served from the shared plan
// cache, must be refused the moment the grant is revoked — even though
// the cached plan predates the revocation.
func TestRevokeBitesCachedPlan(t *testing.T) {
	e := newEngine(t)
	admin := setupEmp(t, e)
	mustExec(t, admin, `CREATE USER t1 PASSWORD 'pw'`)
	mustExec(t, admin, `GRANT SELECT ON emp TO t1`)

	s := bindUser(t, e, "t1", "pw")
	const q = `SELECT id FROM emp WHERE id = 7`
	for i := 0; i < 3; i++ { // warm the plan cache
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(t, admin, `REVOKE SELECT ON emp FROM t1`)
	if _, err := s.Exec(q); !errors.Is(err, ErrAuth) {
		t.Fatalf("revoked SELECT via cached plan err = %v, want ErrAuth", err)
	}
	// Prepared statements re-check on every execution too.
	mustExec(t, admin, `GRANT SELECT ON emp TO t1`)
	ps, err := s.Prepare(`SELECT id FROM emp WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryPrepared(ps, []value.Value{value.NewInt(7)}); err != nil {
		t.Fatalf("granted prepared exec: %v", err)
	}
	mustExec(t, admin, `REVOKE SELECT ON emp FROM t1`)
	if _, err := s.QueryPrepared(ps, []value.Value{value.NewInt(7)}); !errors.Is(err, ErrAuth) {
		t.Fatalf("revoked prepared exec err = %v, want ErrAuth", err)
	}
}

func TestDatalogGrantEnforcement(t *testing.T) {
	e := newEngine(t)
	admin := setupEmp(t, e)
	mustExec(t, admin, `CREATE USER t1 PASSWORD 'pw'`)

	s := bindUser(t, e, "t1", "pw")
	if _, err := e.DatalogQuery(s, `emp(X, 'eng', S)`); !errors.Is(err, ErrAuth) {
		t.Fatalf("datalog over ungranted table err = %v, want ErrAuth", err)
	}
	mustExec(t, admin, `GRANT SELECT ON emp TO t1`)
	if _, err := e.DatalogQuery(s, `emp(X, 'eng', S)`); err != nil {
		t.Fatalf("datalog over granted table: %v", err)
	}
}

func TestMemBudgetAbortsBigStatements(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	// A tiny budget aborts a sorting scan; point lookups stay under it.
	s.SetMemBudget(128)
	if _, err := s.Query(`SELECT id, dept, salary FROM emp ORDER BY salary`); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("oversized sort err = %v, want ErrMemBudget", err)
	}
	if _, err := s.Query(`SELECT id FROM emp WHERE id = 3`); err != nil {
		t.Fatalf("point query under budget: %v", err)
	}
	// Raising the budget clears the constraint.
	s.SetMemBudget(1 << 20)
	if _, err := s.Query(`SELECT id, dept, salary FROM emp ORDER BY salary`); err != nil {
		t.Fatalf("sort under a sane budget: %v", err)
	}
}
