package core

// The vectorized dataflow executor. Eligible read plans run over the OFM
// fragment column caches as value.Batch intermediates — per-column typed
// vectors plus a selection vector — instead of []value.Tuple rows:
// selection narrows the selection vector without touching tuples,
// projection remaps column pointers, hash joins build and probe over
// column slices, and partial aggregation folds column values directly.
// Tuples materialize only at the plan root (or at a Sort/Distinct merge,
// which are inherently row materialization points). The shape mirrors
// execpart.go slot for slot, and every operator charges the same virtual
// machine costs as its row counterpart, so vectorized execution changes
// wall-clock throughput, not simulated-machine semantics.
//
// Eligibility: the engine must run compiled expressions (the kernels are
// compiled forms) under MVCC, and the view must carry no transaction
// overlay (pending writes are row oriented). Everything else — shared CSE
// scans, broadcast/central joins, computed projections, index probes —
// falls back to the row executor, which remains the general path.

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/value"
)

// errVecFallback aborts a vectorized attempt that discovered, mid-flight,
// a shape only the row executor handles (an uncacheable fragment, a
// misaligned join). The caller re-runs the subtree row-at-a-time.
var errVecFallback = errors.New("core: vectorized path declined")

// vecParts is the columnar twin of partRel: parts[i] lives on PE pes[i],
// slots align positionally between siblings.
type vecParts struct {
	parts []*value.Batch
	pes   []int
}

// vecEligible gates vectorized execution for this statement.
func (e *Engine) vecEligible(ctx *execCtx) bool {
	return e.vectorized && e.compiled && e.mvcc && ctx.view.Tx == 0
}

// vectorizable reports whether the whole subtree has a columnar
// implementation. It is a static walk: dynamic declines (uncacheable
// fragments) surface later as errVecFallback.
func vectorizable(n plan.Node) bool {
	switch t := n.(type) {
	case *plan.Scan:
		// Shared CSE scans cache materialized row relations that multiple
		// plan parents alias; they stay on the row path.
		return !t.Shared
	case *plan.Select:
		return vectorizable(t.Child)
	case *plan.Project:
		// Only pure column remaps vectorize; computed expressions
		// materialize through the row projector.
		exprs := make([]expr.Expr, len(t.Exprs))
		for i, ex := range t.Exprs {
			exprs[i] = expr.Clone(ex)
		}
		if _, ok := expr.ColumnIndices(exprs, t.Child.Schema()); !ok {
			return false
		}
		return vectorizable(t.Child)
	case *plan.Exchange:
		if t.Part.Kind != plan.PartHash && t.Part.Kind != plan.PartSingleton {
			return false
		}
		return vectorizable(t.Child)
	case *plan.Join:
		// Broadcast and central joins keep their row implementations (the
		// broadcast hash table is built once and shared across slots).
		if t.Method != plan.JoinColocated && t.Method != plan.JoinRepartition {
			return false
		}
		return vectorizable(t.Left) && vectorizable(t.Right)
	}
	return false
}

// planVectorized reports whether the data-heavy part of the plan would
// run on the columnar executor under this engine's configuration — the
// EXPLAIN annotation. Wrapper nodes the row executor keeps (Limit,
// coordinator aggregates/sorts, computed projections) still count as
// vectorized when the subtree feeding them does.
func (e *Engine) planVectorized(n plan.Node) bool {
	if !e.vectorized || !e.compiled || !e.mvcc {
		return false
	}
	return vecAnnotate(n)
}

func vecAnnotate(n plan.Node) bool {
	if vectorizable(n) {
		return true
	}
	switch t := n.(type) {
	case *plan.Aggregate:
		return vecAnnotate(t.Child)
	case *plan.Sort:
		return vecAnnotate(t.Child)
	case *plan.Distinct:
		return vecAnnotate(t.Child)
	case *plan.Limit:
		return vecAnnotate(t.Child)
	case *plan.Select:
		return vecAnnotate(t.Child)
	case *plan.Project:
		return vecAnnotate(t.Child)
	}
	return false
}

// execVec intercepts plan shapes with a columnar implementation at the
// top of the row executor's dispatch. ok=false means "not handled, run
// the row path"; ok=true with err reports a vectorized execution error.
func (e *Engine) execVec(ctx *execCtx, n plan.Node) (rel *value.Relation, ok bool, err error) {
	if !e.vecEligible(ctx) {
		return nil, false, nil
	}
	switch t := n.(type) {
	case *plan.Aggregate:
		if !t.Pushdown || !vectorizable(t.Child) {
			return nil, false, nil
		}
		return e.execVecAggregate(ctx, t)
	case *plan.Sort:
		if !t.Parallel || !vectorizable(t.Child) {
			return nil, false, nil
		}
		vp, err := e.execVecPart(ctx, t.Child)
		if errors.Is(err, errVecFallback) {
			return nil, false, nil
		}
		if err != nil {
			return nil, true, err
		}
		rel, err := e.partSortMerge(ctx, t, vecToParts(vp))
		return rel, true, err
	case *plan.Distinct:
		if !t.Parallel || !vectorizable(t.Child) {
			return nil, false, nil
		}
		vp, err := e.execVecPart(ctx, t.Child)
		if errors.Is(err, errVecFallback) {
			return nil, false, nil
		}
		if err != nil {
			return nil, true, err
		}
		rel, err := e.partDistinctMerge(ctx, t, vecToParts(vp))
		return rel, true, err
	default:
		if !vectorizable(n) {
			return nil, false, nil
		}
		vp, err := e.execVecPart(ctx, n)
		if errors.Is(err, errVecFallback) {
			return nil, false, nil
		}
		if err != nil {
			return nil, true, err
		}
		return e.gatherVec(ctx, vp, n.Schema()), true, nil
	}
}

// execVecPart evaluates a vectorizable subtree into a partitioned
// columnar intermediate — the batch twin of execPart.
func (e *Engine) execVecPart(ctx *execCtx, n plan.Node) (*vecParts, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return e.execVecScan(ctx, t)
	case *plan.Select:
		return e.execVecSelect(ctx, t)
	case *plan.Project:
		return e.execVecProject(ctx, t)
	case *plan.Exchange:
		return e.execVecExchange(ctx, t)
	case *plan.Join:
		return e.execVecJoin(ctx, t)
	}
	return nil, errVecFallback
}

// execVecScan scans a table's fragments into per-fragment batches over
// the column caches: each fragment filters with its compiled vector
// kernels where it lives, and only a selection vector (not tuples) is
// produced. Cache rebuild bytes are charged to the statement's tenant
// budget — the build is this statement's materialization.
func (e *Engine) execVecScan(ctx *execCtx, sc *plan.Scan) (*vecParts, error) {
	t, err := e.lookupTable(sc.Table)
	if err != nil {
		return nil, err
	}
	frags := e.pruneFragments(t, sc.Pred)
	if err := e.lockFragments(ctx, t, frags); err != nil {
		return nil, err
	}
	parts := make([]*value.Batch, len(frags))
	pes := make([]int, len(frags))
	for i, fi := range frags {
		pes[i] = t.frags[fi].pe
	}
	var built atomic.Int64
	var declined atomic.Bool
	err = eachPart(len(frags), func(i int) error {
		b, bi, err := t.frags[frags[i]].ofm.ScanBatch(ctx.view, sc.Pred, nil)
		built.Add(bi)
		if err != nil {
			return err
		}
		if b == nil {
			declined.Store(true)
			return nil
		}
		parts[i] = &value.Batch{Schema: sc.Out, Cols: b.Cols, Sel: b.Sel, Rows: b.Rows}
		return nil
	})
	if ctx.mem != nil && built.Load() > 0 {
		_ = ctx.mem.charge(built.Load())
	}
	if err != nil {
		return nil, err
	}
	if declined.Load() {
		vecFree(&vecParts{parts: parts, pes: pes})
		return nil, errVecFallback
	}
	return &vecParts{parts: parts, pes: pes}, nil
}

// execVecSelect narrows every partition's selection vector where it
// lives. The vectorized filter is stateless, so one compilation is
// shared across all slots (the row path recompiles per slot only
// because its compiled form keeps scratch state).
func (e *Engine) execVecSelect(ctx *execCtx, s *plan.Select) (*vecParts, error) {
	child, err := e.execVecPart(ctx, s.Child)
	if err != nil {
		return nil, err
	}
	f, err := expr.CompileVecFilter(expr.Clone(s.Pred), s.Child.Schema())
	if err != nil {
		vecFree(child)
		return nil, err
	}
	parts := make([]*value.Batch, len(child.parts))
	err = eachPart(len(child.parts), func(i int) error {
		out, st, err := algebra.SelectBatch(child.parts[i], f)
		if err != nil {
			return err
		}
		e.m.PE(child.pes[i]).Advance(e.m.Cost().ScanCost(st.TuplesRead, true))
		parts[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &vecParts{parts: parts, pes: child.pes}, nil
}

// execVecProject remaps columns on every partition — pointer moves, no
// tuple or vector copies.
func (e *Engine) execVecProject(ctx *execCtx, p *plan.Project) (*vecParts, error) {
	child, err := e.execVecPart(ctx, p.Child)
	if err != nil {
		return nil, err
	}
	exprs := make([]expr.Expr, len(p.Exprs))
	for i, ex := range p.Exprs {
		exprs[i] = expr.Clone(ex)
	}
	idxs, colsOK := expr.ColumnIndices(exprs, p.Child.Schema())
	if !colsOK {
		vecFree(child)
		return nil, errVecFallback
	}
	parts := make([]*value.Batch, len(child.parts))
	err = eachPart(len(child.parts), func(i int) error {
		out, st, err := algebra.ProjectBatch(child.parts[i], idxs, p.Out)
		if err != nil {
			return err
		}
		e.m.PE(child.pes[i]).Advance(e.m.Cost().BuildCost(st.TuplesEmitted))
		parts[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &vecParts{parts: parts, pes: child.pes}, nil
}

// execVecExchange moves a columnar intermediate. Hash exchanges bucket
// rows by the same FNV tuple hash the row exchange uses — so vectorized
// and row plans place every tuple on the same PE — but ship selection
// vectors' worth of gathered columns instead of tuples. The two-phase
// depart/arrive stamping discipline is copied from execPartExchange.
func (e *Engine) execVecExchange(ctx *execCtx, x *plan.Exchange) (*vecParts, error) {
	child, err := e.execVecPart(ctx, x.Child)
	if err != nil {
		return nil, err
	}
	schema := x.Child.Schema()
	switch x.Part.Kind {
	case plan.PartHash:
		n := x.Part.N
		if n < 1 {
			n = len(child.parts)
		}
		targets := e.exchangeTargets(n)
		perSrc := make([][]*value.Batch, len(child.parts))
		departs := make([][]int64, len(child.parts))
		srcsByPE := map[int][]int{}
		var peOrder []int
		for i, pe := range child.pes {
			if _, seen := srcsByPE[pe]; !seen {
				peOrder = append(peOrder, pe)
			}
			srcsByPE[pe] = append(srcsByPE[pe], i)
		}
		err = eachPart(len(peOrder), func(k int) error {
			pe := peOrder[k]
			for _, i := range srcsByPE[pe] {
				b := child.parts[i]
				bn := b.Len()
				if bn == 0 {
					continue
				}
				sels := make([][]int32, n)
				for li := 0; li < bn; li++ {
					row := b.Row(li)
					bkt := int(b.HashRow(row, x.Part.Keys) % uint64(n))
					sels[bkt] = append(sels[bkt], int32(row))
				}
				e.m.PE(pe).Advance(e.m.Cost().HashCost(bn))
				buckets := make([]*value.Batch, n)
				dep := make([]int64, n)
				for bkt, sel := range sels {
					if len(sel) == 0 {
						continue
					}
					buckets[bkt] = &value.Batch{Schema: schema, Cols: b.Cols, Sel: sel, Rows: b.Rows}
					if pe != targets[bkt] {
						dep[bkt] = int64(e.m.Depart(pe, buckets[bkt].Size()))
					}
				}
				if b.Sel != nil {
					value.PutSel(b.Sel)
					b.Sel = nil
				}
				perSrc[i] = buckets
				departs[i] = dep
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		parts := make([]*value.Batch, n)
		for bkt := 0; bkt < n; bkt++ {
			var pieces []*value.Batch
			for i := range perSrc {
				if perSrc[i] == nil || perSrc[i][bkt] == nil {
					continue
				}
				piece := perSrc[i][bkt]
				if departs[i][bkt] > 0 {
					e.m.Arrive(child.pes[i], targets[bkt], piece.Size(), time.Duration(departs[i][bkt]))
				}
				pieces = append(pieces, piece)
			}
			parts[bkt] = value.ConcatBatches(schema, pieces)
		}
		return &vecParts{parts: parts, pes: targets}, nil

	case plan.PartSingleton:
		b := e.gatherVecBatch(ctx, child, schema)
		return &vecParts{parts: []*value.Batch{b}, pes: []int{ctx.s.pe}}, nil

	default: // PartBroadcast — consumed by the row broadcast join only
		vecFree(child)
		return nil, errVecFallback
	}
}

// execVecJoin hash-joins aligned columnar slots in parallel on the left
// slot's PE, finishing each output partition in place (swap restore as a
// column reorder, residual as a vector kernel).
func (e *Engine) execVecJoin(ctx *execCtx, j *plan.Join) (*vecParts, error) {
	l, err := e.execVecPart(ctx, j.Left)
	if err != nil {
		return nil, err
	}
	r, err := e.execVecPart(ctx, j.Right)
	if err != nil {
		vecFree(l)
		return nil, err
	}
	if len(l.parts) != len(r.parts) {
		// Misaligned shapes degrade through the row executor.
		vecFree(l)
		vecFree(r)
		return nil, errVecFallback
	}
	var residual *expr.VecFilter
	if j.Residual != nil {
		residual, err = expr.CompileVecFilter(expr.Clone(j.Residual), j.Out)
		if err != nil {
			vecFree(l)
			vecFree(r)
			return nil, err
		}
	}
	parts := make([]*value.Batch, len(l.parts))
	err = eachPart(len(l.parts), func(i int) error {
		pe := l.pes[i]
		if r.parts[i].Len() > 0 && r.pes[i] != pe {
			e.m.Send(r.pes[i], pe, r.parts[i].Size())
		}
		out, st, err := algebra.HashJoinBatch(l.parts[i], r.parts[i], j.LeftKeys, j.RightKeys)
		if err != nil {
			return err
		}
		cost := e.m.Cost()
		e.m.PE(pe).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
		out, err = e.finishJoinVec(j, out, pe, residual)
		if err != nil {
			return err
		}
		parts[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &vecParts{parts: parts, pes: append([]int(nil), l.pes...)}, nil
}

// finishJoinVec finishes one columnar join partition on PE pe: restores
// the pre-swap column order (a pointer reorder — the row path must rotate
// every tuple), stamps the output schema, applies the residual kernel.
func (e *Engine) finishJoinVec(j *plan.Join, b *value.Batch, pe int, residual *expr.VecFilter) (*value.Batch, error) {
	if j.Swapped {
		if lw := j.Left.Schema().Len(); lw > 0 && lw < len(b.Cols) {
			cols := make([]*value.Vec, 0, len(b.Cols))
			cols = append(cols, b.Cols[lw:]...)
			cols = append(cols, b.Cols[:lw]...)
			b.Cols = cols
		}
	}
	b.Schema = j.Out
	if residual != nil {
		out, st, err := algebra.SelectBatch(b, residual)
		if err != nil {
			return nil, err
		}
		e.m.PE(pe).Advance(e.m.Cost().ScanCost(st.TuplesRead, true))
		out.Schema = j.Out
		b = out
	}
	return b, nil
}

// execVecAggregate runs two-phase distributed aggregation columnar:
// per-fragment partials fold column slices directly for bare table
// scans, partial-per-partition on the columnar dataflow for any other
// vectorizable child, with the usual coordinator merge.
func (e *Engine) execVecAggregate(ctx *execCtx, a *plan.Aggregate) (*value.Relation, bool, error) {
	if sc, isScan := a.Child.(*plan.Scan); isScan {
		return e.execVecPushdownAggregate(ctx, a, sc)
	}
	vp, err := e.execVecPart(ctx, a.Child)
	if errors.Is(err, errVecFallback) {
		return nil, false, nil
	}
	if err != nil {
		return nil, true, err
	}
	partialSpecs := algebra.PartialSpecs(a.Specs)
	partials := make([]*value.Relation, len(vp.parts))
	err = eachPart(len(vp.parts), func(i int) error {
		out, st, err := algebra.AggregateBatch(vp.parts[i], a.GroupBy, partialSpecs)
		if err != nil {
			return err
		}
		cost := e.m.Cost()
		e.m.PE(vp.pes[i]).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
		partials[i] = out
		return nil
	})
	if err != nil {
		return nil, true, err
	}
	out, err := e.mergeVecAggPartials(ctx, a, partials, vp.pes)
	return out, true, err
}

// execVecPushdownAggregate aggregates straight off the fragment column
// caches: every fragment scans and partially aggregates where it lives,
// and only the partials travel.
func (e *Engine) execVecPushdownAggregate(ctx *execCtx, a *plan.Aggregate, sc *plan.Scan) (*value.Relation, bool, error) {
	t, err := e.lookupTable(sc.Table)
	if err != nil {
		return nil, true, err
	}
	frags := e.pruneFragments(t, sc.Pred)
	if err := e.lockFragments(ctx, t, frags); err != nil {
		return nil, true, err
	}
	partialSpecs := algebra.PartialSpecs(a.Specs)
	partials := make([]*value.Relation, len(frags))
	pes := make([]int, len(frags))
	for i, fi := range frags {
		pes[i] = t.frags[fi].pe
	}
	var built atomic.Int64
	var declined atomic.Bool
	err = eachPart(len(frags), func(i int) error {
		f := t.frags[frags[i]]
		b, bi, err := f.ofm.ScanBatch(ctx.view, sc.Pred, nil)
		built.Add(bi)
		if err != nil {
			return err
		}
		if b == nil {
			declined.Store(true)
			return nil
		}
		out, st, err := algebra.AggregateBatch(b, a.GroupBy, partialSpecs)
		if err != nil {
			return err
		}
		cost := e.m.Cost()
		e.m.PE(f.pe).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
		partials[i] = out
		return nil
	})
	if ctx.mem != nil && built.Load() > 0 {
		_ = ctx.mem.charge(built.Load())
	}
	if err != nil {
		return nil, true, err
	}
	if declined.Load() {
		return nil, false, nil
	}
	out, err := e.mergeVecAggPartials(ctx, a, partials, pes)
	return out, true, err
}

// mergeVecAggPartials ships the partials to the coordinator and merges
// them — the same tail as the row pushdown paths, plus the tenant-budget
// charge for the merged materialization.
func (e *Engine) mergeVecAggPartials(ctx *execCtx, a *plan.Aggregate, partials []*value.Relation, pes []int) (*value.Relation, error) {
	for i, p := range partials {
		if p.Len() > 0 && pes[i] != ctx.s.pe {
			e.m.Send(pes[i], ctx.s.pe, p.Size())
		}
	}
	out, st, err := algebra.MergeAggregates(partials, len(a.GroupBy), a.Specs)
	if err != nil {
		return nil, err
	}
	if err := ctx.chargeRel(out); err != nil {
		return nil, err
	}
	cost := e.m.Cost()
	e.m.PE(ctx.s.pe).Advance(cost.HashCost(st.TuplesRead) + cost.BuildCost(st.TuplesEmitted))
	out.Schema = a.Out
	return out, nil
}

// gatherVec materializes a columnar intermediate at the coordinator —
// the single tuple-construction point of a fully vectorized plan.
func (e *Engine) gatherVec(ctx *execCtx, vp *vecParts, schema *value.Schema) *value.Relation {
	out := value.NewRelation(schema)
	total := 0
	for _, b := range vp.parts {
		total += b.Len()
	}
	out.Tuples = make([]value.Tuple, 0, total)
	for i, b := range vp.parts {
		if b.Len() == 0 {
			vecFreeBatch(b)
			continue
		}
		if vp.pes[i] != ctx.s.pe {
			e.m.Send(vp.pes[i], ctx.s.pe, b.Size())
		}
		rel := b.Materialize()
		out.Tuples = append(out.Tuples, rel.Tuples...)
		vecFreeBatch(b)
	}
	// Like gatherPart: a breach sticks in the accumulator and aborts the
	// statement at execPlan's checkpoint.
	_ = ctx.chargeRel(out)
	return out
}

// gatherVecBatch gathers a columnar intermediate into one batch at the
// coordinator without materializing tuples (a singleton exchange).
func (e *Engine) gatherVecBatch(ctx *execCtx, vp *vecParts, schema *value.Schema) *value.Batch {
	for i, b := range vp.parts {
		if b.Len() > 0 && vp.pes[i] != ctx.s.pe {
			e.m.Send(vp.pes[i], ctx.s.pe, b.Size())
		}
	}
	out := value.ConcatBatches(schema, vp.parts)
	if ctx.mem != nil {
		_ = ctx.mem.charge(int64(out.Size()))
	}
	return out
}

// vecToParts materializes every batch into a row partition on its PE —
// the bridge into row-oriented tails (parallel sort / distinct merges).
func vecToParts(vp *vecParts) *partRel {
	parts := make([]*value.Relation, len(vp.parts))
	for i, b := range vp.parts {
		parts[i] = b.Materialize()
		vecFreeBatch(b)
	}
	return &partRel{parts: parts, pes: vp.pes}
}

// vecFree returns every selection vector of a dropped intermediate to
// the pool.
func vecFree(vp *vecParts) {
	if vp == nil {
		return
	}
	for _, b := range vp.parts {
		vecFreeBatch(b)
	}
}

func vecFreeBatch(b *value.Batch) {
	if b != nil && b.Sel != nil {
		value.PutSel(b.Sel)
		b.Sel = nil
	}
}
