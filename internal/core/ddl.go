package core

import (
	"fmt"

	"repro/internal/fragment"
	"repro/internal/ofm"
	"repro/internal/pool"
	"repro/internal/sqlparse"
	"repro/internal/value"
	"repro/internal/wal"
)

// CreateTable registers a fragmented table: the data allocation manager
// places its fragments onto PEs, one Persistent OFM per fragment is
// spawned as a process, and each OFM's redo log lands on the stable
// store of the nearest disk PE.
func (e *Engine) CreateTable(name string, schema *value.Schema, scheme *fragment.Scheme, primaryKey []int) error {
	if scheme == nil {
		scheme = &fragment.Scheme{Strategy: fragment.Single, N: 1}
	}
	if err := scheme.Validate(schema); err != nil {
		return err
	}
	// Allocation: equal initial weights, one per fragment.
	weights := make([]int64, scheme.N)
	for i := range weights {
		weights[i] = 1 << 16
	}
	placement := e.alloc.Place(weights, e.m)

	def, err := e.cat.Create(name, schema, scheme, placement, primaryKey)
	if err != nil {
		return err
	}
	t := &table{def: def, logsRef: &fragLogs{}}
	for i := 0; i < scheme.N; i++ {
		pe := placement[i]
		fragName := fmt.Sprintf("%s#%d", def.Name, i)
		log, err := e.logFor(pe, fragName)
		if err != nil {
			e.cat.Drop(def.Name)
			return err
		}
		frag := i
		var decide wal.Decider
		if e.decisions != nil {
			decide = e.decisions.Decision
		}
		o, err := ofm.New(ofm.Config{
			Name:     fragName,
			Schema:   schema,
			PE:       e.m.PE(pe),
			Machine:  e.m,
			Kind:     ofm.Persistent,
			Log:      log,
			Compiled: e.compiled,
			Decide:   decide,
			Horizon:  e.txns.Horizon,
			StatsFn: func(rd int, bd int64) {
				def.AddStats(frag, rd, bd)
			},
		})
		if err != nil {
			e.cat.Drop(def.Name)
			return err
		}
		// Primary-key hash index for point lookups.
		if len(primaryKey) == 1 {
			if _, err := o.Store().CreateHashIndex("pk", primaryKey); err != nil {
				e.cat.Drop(def.Name)
				return err
			}
		}
		proc, err := e.spawnOFMProcess(o, pe)
		if err != nil {
			e.cat.Drop(def.Name)
			return err
		}
		t.frags = append(t.frags, &fragRef{ofm: o, proc: proc, pe: pe})
		t.logsRef.logs = append(t.logsRef.logs, log)
	}
	e.mu.Lock()
	e.tables[def.Name] = t
	e.mu.Unlock()
	return nil
}

// logFor opens a WAL for a fragment on the stable store nearest its PE.
// Machines without disks fall back to transient-style logging on an
// in-memory store attached to PE 0 — only possible in test rigs.
func (e *Engine) logFor(pe int, fragName string) (*wal.Log, error) {
	diskPE := e.m.NearestDiskPE(pe)
	if diskPE < 0 {
		return nil, fmt.Errorf("core: machine has no disk PEs for stable storage")
	}
	e.mu.Lock()
	store := e.stores[diskPE]
	e.mu.Unlock()
	if store == nil {
		return nil, fmt.Errorf("core: no stable store on PE %d", diskPE)
	}
	return wal.Open(store, "wal-"+fragName)
}

// DropTable removes a table: processes stop, the catalog entry goes.
func (e *Engine) DropTable(name string) error {
	key := canonical(name)
	e.mu.Lock()
	t, ok := e.tables[key]
	if ok {
		delete(e.tables, key)
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: table %q does not exist", name)
	}
	for _, f := range t.frags {
		f.proc.Stop()
		f.proc.Join()
	}
	return e.cat.Drop(name)
}

// createFromAST handles a parsed CREATE TABLE.
func (e *Engine) createFromAST(ct *sqlparse.CreateTable) error {
	schema := value.NewSchema(ct.Cols...)
	var scheme *fragment.Scheme
	if ct.Frag != nil {
		scheme = &fragment.Scheme{Strategy: ct.Frag.Strategy, N: ct.Frag.N, Bounds: ct.Frag.Bounds}
		if ct.Frag.Column != "" {
			ix := schema.Index(ct.Frag.Column)
			if ix < 0 {
				return fmt.Errorf("core: fragmentation column %q not in table", ct.Frag.Column)
			}
			scheme.Column = ix
		}
	}
	var pk []int
	for _, name := range ct.PrimaryKey {
		ix := schema.Index(name)
		if ix < 0 {
			return fmt.Errorf("core: primary key column %q not in table", name)
		}
		pk = append(pk, ix)
	}
	return e.CreateTable(ct.Name, schema, scheme, pk)
}

// LoadTable bulk-loads tuples outside transactions (benchmark setup):
// the scheme routes each tuple, fragments load in parallel.
func (e *Engine) LoadTable(name string, tuples []value.Tuple) error {
	t, err := e.lookupTable(name)
	if err != nil {
		return err
	}
	parts := make([][]value.Tuple, len(t.frags))
	for _, tp := range tuples {
		i := t.def.Scheme.FragmentOf(tp)
		parts[i] = append(parts[i], tp)
	}
	coord := e.coordinatorPE()
	var specs []pool.CallSpec
	for i, f := range t.frags {
		if len(parts[i]) == 0 {
			continue
		}
		specs = append(specs, pool.CallSpec{To: f.proc, Kind: "load",
			Body: loadReq{tuples: parts[i]}, Bytes: relBytes(parts[i])})
	}
	_, errs := e.rt.CallAll(coord, specs)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func relBytes(tuples []value.Tuple) int {
	n := 0
	for _, t := range tuples {
		n += t.Size()
	}
	return n
}
