package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/txn"
)

// TestStreamedCursorsUnderWriterStorm is the MVCC stream/writer race
// net, meant to run under -race: 16 long-lived streamed cursors drain a
// fragmented table batch-by-batch while writer sessions storm it with
// balanced transfers. Every cursor must observe one consistent
// snapshot — the transfer invariant (total balance is constant in every
// committed state) must hold over each cursor's streamed rows even
// though hundreds of commits land mid-stream — and the writers, who
// share no locks with the readers, must all complete.
func TestStreamedCursorsUnderWriterStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const (
		rows     = 256
		initBal  = 100
		total    = rows * initBal
		readers  = 16
		cursors  = 3 // streams per reader, back to back
		writers  = 8
		transfer = 25 // committed transfers per writer
	)
	eng, err := New(Config{NumPEs: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	setup := eng.NewSession()
	mustExec(t, setup, `CREATE TABLE acct (id INT, bal INT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 8 FRAGMENTS`)
	var vals []string
	for i := 0; i < rows; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", i, initBal))
	}
	mustExec(t, setup, "INSERT INTO acct VALUES "+strings.Join(vals, ", "))
	setup.Close()

	var wg sync.WaitGroup
	errc := make(chan error, readers*cursors+writers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := eng.NewSession()
			defer s.Close()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfer; i++ {
				// Balanced transfer: retried until it commits, so every
				// committed state keeps the total at rows*initBal.
				for {
					a, b := r.Intn(rows), r.Intn(rows)
					_, err := s.Exec(`BEGIN`)
					if err == nil {
						_, err = s.Exec(fmt.Sprintf(`UPDATE acct SET bal = bal - 5 WHERE id = %d`, a))
					}
					if err == nil {
						_, err = s.Exec(fmt.Sprintf(`UPDATE acct SET bal = bal + 5 WHERE id = %d`, b))
					}
					if err == nil {
						_, err = s.Exec(`COMMIT`)
					}
					if err == nil {
						break
					}
					if !txn.IsRetryable(err) {
						errc <- fmt.Errorf("writer %d: %w", w, err)
						return
					}
					if s.InTransaction() {
						s.Exec(`ROLLBACK`)
					}
				}
			}
		}(w)
	}

	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			s := eng.NewSession()
			defer s.Close()
			for c := 0; c < cursors; c++ {
				cur, _, err := s.Stream(`SELECT id, bal FROM acct`)
				if err != nil {
					errc <- fmt.Errorf("reader %d cursor %d: %w", rd, c, err)
					return
				}
				var sum, seen int64
				for {
					rel, err := cur.Next()
					if err != nil {
						errc <- fmt.Errorf("reader %d cursor %d: %w", rd, c, err)
						return
					}
					if rel == nil {
						break
					}
					for _, tp := range rel.Tuples {
						sum += tp[1].Int()
						seen++
					}
					// Yield so writer commits land between batches.
					runtime.Gosched()
				}
				if seen != rows || sum != total {
					errc <- fmt.Errorf("reader %d cursor %d: torn snapshot — %d rows, sum %d (want %d rows, sum %d)",
						rd, c, seen, sum, rows, total)
					return
				}
			}
		}(rd)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if n := eng.Txns().ActiveCount(); n != 0 {
		t.Errorf("after storm: %d transactions still active", n)
	}
	// The final committed state preserved the invariant too.
	final := eng.NewSession()
	defer final.Close()
	rel, err := final.Query(`SELECT SUM(bal) AS total FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Tuples[0][0].Int(); got != total {
		t.Errorf("final total = %d, want %d", got, total)
	}
}
