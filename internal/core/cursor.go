package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/pool"
	"repro/internal/sqlparse"
	"repro/internal/value"
)

// Cursor drains one SELECT's result incrementally, a batch of tuples at
// a time, instead of materializing the whole relation at the
// coordinator. Batches arrive fragment-at-a-time for plans whose root
// pipeline reaches a Scan or IndexProbe (with coordinator-side Select /
// Project / Limit applied per batch); other roots (joins, aggregates,
// sorts) materialize once and stream as a single batch.
//
// Under MVCC the cursor reads a snapshot pinned when it opened: the
// stream observes one consistent version of the database for its whole
// lifetime, no locks are held, and concurrent writers are never blocked
// by (nor block) the stream. The snapshot pin — which only holds back
// version garbage collection — is released when the cursor is exhausted
// or closed.
//
// Under the 2PL baseline, locks are taken in full before the cursor is
// returned (strict 2PL is preserved: nothing is acquired mid-stream).
// For an autocommit statement the transaction — and with it the
// fragment S-locks — stays open until the cursor is exhausted or
// closed: Next returning (nil, nil) commits it, Close before exhaustion
// aborts it. Inside an explicit transaction the cursor leaves the
// transaction untouched and locks live until COMMIT/ROLLBACK, exactly
// as for a materialized statement.
//
// A Cursor is not safe for concurrent use, mirroring the Session that
// produced it.
type Cursor struct {
	s         *Session
	settle    func(error) error // from readView: settles txn / releases pin
	schema    *value.Schema
	planStr   string
	iter      *relIter
	done      bool
	err       error
	rows      int64
	simStart  time.Duration
	wallStart time.Time
	simTime   time.Duration
	wallTime  time.Duration
}

// Schema returns the result schema (known before the first tuple).
func (c *Cursor) Schema() *value.Schema { return c.schema }

// Plan returns the optimized logical plan being streamed.
func (c *Cursor) Plan() string { return c.planStr }

// Rows returns the number of tuples delivered so far.
func (c *Cursor) Rows() int64 { return c.rows }

// SimTime returns the simulated execution time; valid once the cursor
// has finished (Next returned nil or Close was called).
func (c *Cursor) SimTime() time.Duration { return c.simTime }

// WallTime returns the real execution time; valid once the cursor has
// finished.
func (c *Cursor) WallTime() time.Duration { return c.wallTime }

// Next returns the next non-empty batch of the result, or (nil, nil)
// once the stream is exhausted (at which point an autocommit
// transaction has committed and its locks are released). Any error —
// including a commit failure at end of stream — poisons the cursor.
func (c *Cursor) Next() (*value.Relation, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.done {
		return nil, nil
	}
	rel, err := c.iter.next()
	if err != nil {
		c.err = err
		c.finish(false)
		return nil, err
	}
	if rel == nil {
		if err := c.finish(true); err != nil {
			c.err = err
			return nil, err
		}
		return nil, nil
	}
	c.rows += int64(len(rel.Tuples))
	return rel, nil
}

// Close releases the cursor. Closing before exhaustion aborts an
// autocommit transaction (releasing its locks); closing after Next
// returned (nil, nil) is a no-op. Close is idempotent.
func (c *Cursor) Close() error {
	if !c.done {
		c.finish(false)
	}
	return nil
}

// errCursorClosed marks a cursor abandoned before exhaustion, routing
// settle down its abort/release path.
var errCursorClosed = errors.New("core: cursor closed before exhaustion")

// finish ends the stream exactly once: waits out any in-flight fragment
// calls, settles the read (autocommit commit/abort under 2PL, snapshot
// pin release under MVCC), and stamps the timings.
func (c *Cursor) finish(commit bool) error {
	if c.done {
		return nil
	}
	c.done = true
	c.s.unregisterCursor(c)
	c.iter.wait()
	var err error
	if commit {
		err = c.settle(nil)
	} else {
		c.settle(errCursorClosed) // abort path; the sentinel is discarded
	}
	c.simTime = c.s.e.m.MaxClock() - c.simStart
	c.wallTime = time.Since(c.wallStart)
	return err
}

// Stream executes one SQL statement, returning a Cursor when the
// statement produces a relation and a materialized Result otherwise
// (DDL, DML and transaction control behave exactly as Exec). Exactly
// one of the two returns is non-nil on success.
//
// Like Exec, Stream goes through the engine's plan cache: a hot
// statement shape skips parsing and optimization and streams its cached
// plan with the literals bound, so streaming costs no per-statement
// compilation over the materialized path.
func (s *Session) Stream(sql string) (*Cursor, *Result, error) {
	pc := s.e.plans
	if pc == nil {
		return s.parseStream(sql)
	}
	key, lits, ok := sqlparse.Normalize(sql)
	if !ok {
		return s.parseStream(sql)
	}
	if ps, hit := pc.get(key); hit {
		if ps == nil {
			// Statement shape known non-cacheable.
			return s.parseStream(sql)
		}
		return s.streamAuto(ps, lits, sql)
	}
	cs, vals, err := s.e.compileAutoFrom(sql, lits)
	if err == errNotCacheable {
		pc.put(key, nil)
		return s.parseStream(sql)
	}
	if err != nil {
		return nil, nil, err
	}
	ps := newPreparedStmt(s.e, sql, true, cs)
	pc.put(key, ps)
	return s.streamAuto(ps, vals, sql)
}

// streamAuto streams a plan-cached statement with its lifted literals,
// falling back to the uncached path on a parameter-kind mismatch (the
// same discipline as execAuto: caching must never change an outcome).
func (s *Session) streamAuto(ps *PreparedStmt, lits []value.Value, sql string) (*Cursor, *Result, error) {
	cur, res, err := s.streamPrepared(ps, lits)
	if err != nil && errors.Is(err, errBindKind) {
		return s.parseStream(sql)
	}
	return cur, res, err
}

// streamPrepared opens a cursor over one compiled statement execution.
func (s *Session) streamPrepared(ps *PreparedStmt, args []value.Value) (*Cursor, *Result, error) {
	cs, err := ps.current()
	if err != nil {
		return nil, nil, err
	}
	if len(args) != cs.nParams {
		return nil, nil, fmt.Errorf("core: statement wants %d parameters, got %d", cs.nParams, len(args))
	}
	bound, err := coerceArgs(args, cs.kinds, ps.auto)
	if err != nil {
		return nil, nil, err
	}
	if cs.sel != nil {
		if err := s.checkAccess(cs.access); err != nil {
			return nil, nil, err
		}
		root := cs.sel
		if cs.nParams > 0 {
			if root, err = bindPlan(root, bound); err != nil {
				return nil, nil, err
			}
		}
		cur, err := s.streamPlanStr(root, cs.planStr)
		if err != nil {
			return nil, nil, err
		}
		return cur, nil, nil
	}
	st := cs.ast
	if cs.nParams > 0 {
		if st, err = substStmt(st, bound); err != nil {
			return nil, nil, err
		}
	}
	res, err := s.execStmtTimed(st)
	return nil, res, err
}

// parseStream is the uncached streaming path: parse, and either open a
// cursor (SELECT) or execute materialized (everything else).
func (s *Session) parseStream(sql string) (*Cursor, *Result, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		res, err := s.execStmtTimed(st)
		return nil, res, err
	}
	if err := s.checkStmt(sel); err != nil {
		return nil, nil, err
	}
	root, err := s.e.translateSelect(sel)
	if err != nil {
		return nil, nil, err
	}
	root = s.e.opt.Optimize(root)
	cur, err := s.streamPlanStr(root, plan.Format(root))
	if err != nil {
		return nil, nil, err
	}
	return cur, nil, nil
}

// execStmtTimed runs one parsed statement with Exec's timing envelope.
func (s *Session) execStmtTimed(st sqlparse.Stmt) (*Result, error) {
	wallStart := time.Now()
	simStart := s.e.m.MaxClock()
	res, err := s.execStmt(st)
	if err != nil {
		return nil, err
	}
	res.WallTime = time.Since(wallStart)
	res.SimTime = s.e.m.MaxClock() - simStart
	return res, nil
}

// streamPlanStr opens a cursor over an optimized plan (with its
// pre-rendered format string) under the session's transaction
// discipline. All locks are acquired here, before the cursor is handed
// back.
func (s *Session) streamPlanStr(root plan.Node, planStr string) (*Cursor, error) {
	wallStart := time.Now()
	simStart := s.e.m.MaxClock()
	tx, view, settle, err := s.readView()
	if err != nil {
		return nil, err
	}
	ctx := &execCtx{s: s, tx: tx, view: view, shared: map[string]*value.Relation{}}
	iter, err := s.e.execStream(ctx, root)
	if err != nil {
		return nil, settle(err)
	}
	cur := &Cursor{
		s:         s,
		settle:    settle,
		schema:    root.Schema(),
		planStr:   planStr,
		iter:      iter,
		simStart:  simStart,
		wallStart: wallStart,
	}
	s.registerCursor(cur)
	return cur, nil
}

// relIter yields a result as a sequence of non-empty per-fragment (or
// materialized) relations; next returns (nil, nil) when exhausted. wait
// blocks until any in-flight fragment calls have drained, so an
// abandoned iterator never leaks work past cursor close.
type relIter struct {
	next func() (*value.Relation, error)
	wait func()
}

func noWait() {}

// singleBatchIter streams an already-materialized relation as one batch.
func singleBatchIter(rel *value.Relation) *relIter {
	done := false
	return &relIter{
		next: func() (*value.Relation, error) {
			if done || rel == nil || len(rel.Tuples) == 0 {
				return nil, nil
			}
			done = true
			return rel, nil
		},
		wait: noWait,
	}
}

// execStream builds a streaming iterator for a plan. Roots the pipeline
// understands (Scan, IndexProbe, and Select/Project/Limit above them)
// deliver results fragment-at-a-time; every other shape falls back to
// the materializing executor and streams as a single batch.
func (e *Engine) execStream(ctx *execCtx, n plan.Node) (*relIter, error) {
	switch t := n.(type) {
	case *plan.Scan:
		if t.Shared {
			break // CSE-shared scans keep their materialized cache semantics
		}
		return e.streamScan(ctx, t)
	case *plan.IndexProbe:
		return e.streamIndexProbe(ctx, t)
	case *plan.Select:
		child, err := e.execStream(ctx, t.Child)
		if err != nil {
			return nil, err
		}
		return e.streamSelect(ctx, t, child)
	case *plan.Project:
		child, err := e.execStream(ctx, t.Child)
		if err != nil {
			return nil, err
		}
		return e.streamProject(ctx, t, child)
	case *plan.Limit:
		child, err := e.execStream(ctx, t.Child)
		if err != nil {
			return nil, err
		}
		return streamLimit(t.N, child), nil
	}
	rel, err := e.exec(ctx, n)
	if err != nil {
		return nil, err
	}
	return singleBatchIter(rel), nil
}

// streamScan locks the (pruned) fragments up front, then fans the scan
// calls out to every fragment process at once (departures stamped
// deterministically, as in the materialized parallelScan); batches are
// delivered in fragment order as each reply lands, so the first
// fragment's tuples reach the consumer while later fragments are still
// scanning.
func (e *Engine) streamScan(ctx *execCtx, sc *plan.Scan) (*relIter, error) {
	t, err := e.lookupTable(sc.Table)
	if err != nil {
		return nil, err
	}
	frags := e.pruneFragments(t, sc.Pred)
	if err := e.lockFragments(ctx, t, frags); err != nil {
		return nil, err
	}
	if e.vecEligible(ctx) {
		return e.streamScanVec(ctx, t, frags, sc), nil
	}
	specs := make([]pool.CallSpec, len(frags))
	for i, fi := range frags {
		specs[i] = pool.CallSpec{To: t.frags[fi].proc, Kind: "scan", Body: scanReq{view: ctx.view, pred: sc.Pred}, Bytes: 128}
	}
	waits := e.rt.CallEach(ctx.s.pe, specs)
	i := 0
	next := func() (*value.Relation, error) {
		for i < len(waits) {
			res, err := waits[i]()
			i++
			if err != nil {
				return nil, err
			}
			rel := res.(*value.Relation)
			if len(rel.Tuples) == 0 {
				continue
			}
			out := value.NewRelation(sc.Out)
			out.Tuples = rel.Tuples
			return out, nil
		}
		return nil, nil
	}
	wait := func() {
		for ; i < len(waits); i++ {
			waits[i]()
		}
	}
	return &relIter{next: next, wait: wait}, nil
}

// streamScanVec delivers a leaf scan fragment-at-a-time over the column
// caches: each fragment filters columnar where it lives and only the
// qualifying rows materialize into the delivered batch, lazily as the
// consumer asks. A fragment whose cache declines (pending overlay
// writes, uncacheable kinds) falls back to a row scan for that fragment
// only — the stream keeps going either way.
func (e *Engine) streamScanVec(ctx *execCtx, t *table, frags []int, sc *plan.Scan) *relIter {
	i := 0
	next := func() (*value.Relation, error) {
		for i < len(frags) {
			f := t.frags[frags[i]]
			i++
			b, built, err := f.ofm.ScanBatch(ctx.view, sc.Pred, nil)
			if ctx.mem != nil && built > 0 {
				_ = ctx.mem.charge(built)
			}
			if err != nil {
				return nil, err
			}
			out := value.NewRelation(sc.Out)
			if b != nil {
				if b.Len() == 0 {
					vecFreeBatch(b)
					continue
				}
				if f.pe != ctx.s.pe {
					e.m.Send(f.pe, ctx.s.pe, b.Size())
				}
				out.Tuples = b.Materialize().Tuples
				vecFreeBatch(b)
			} else {
				rel, err := f.ofm.Scan(ctx.view, sc.Pred, nil)
				if err != nil {
					return nil, err
				}
				if len(rel.Tuples) == 0 {
					continue
				}
				if f.pe != ctx.s.pe {
					e.m.Send(f.pe, ctx.s.pe, rel.Size())
				}
				out.Tuples = rel.Tuples
			}
			_ = ctx.chargeRel(out)
			return out, nil
		}
		return nil, nil
	}
	return &relIter{next: next, wait: noWait}
}

// streamIndexProbe yields the point-query fast path fragment-at-a-time:
// probes are cheap and (for a fragmentation-key equality) pinned to a
// single fragment, so each one runs lazily when the consumer asks. The
// routing, locking and probe logic is exactly execIndexProbe's, via
// the shared probeTargets/probeFragment helpers.
func (e *Engine) streamIndexProbe(ctx *execCtx, pr *plan.IndexProbe) (*relIter, error) {
	t, key, frags, err := e.probeTargets(ctx, pr)
	if err != nil {
		return nil, err
	}
	i := 0
	next := func() (*value.Relation, error) {
		for i < len(frags) {
			f := t.frags[frags[i]]
			i++
			rel, err := e.probeFragment(ctx, f, pr, key)
			if err != nil {
				return nil, err
			}
			if len(rel.Tuples) == 0 {
				continue
			}
			out := value.NewRelation(pr.Out)
			out.Tuples = rel.Tuples
			return out, nil
		}
		return nil, nil
	}
	return &relIter{next: next, wait: noWait}, nil
}

// streamSelect applies a coordinator-side residual filter to each batch,
// compiling (or binding) the predicate once for the whole stream.
func (e *Engine) streamSelect(ctx *execCtx, sl *plan.Select, child *relIter) (*relIter, error) {
	schema := sl.Child.Schema()
	var filter func(*value.Relation) (*value.Relation, error)
	if e.compiled {
		pred, err := expr.CompilePredicate(expr.Clone(sl.Pred), schema)
		if err != nil {
			child.wait()
			return nil, err
		}
		filter = func(rel *value.Relation) (*value.Relation, error) {
			out, st, err := algebra.Select(rel, pred)
			if err != nil {
				return nil, err
			}
			e.m.PE(ctx.s.pe).Advance(e.m.Cost().ScanCost(st.TuplesRead, true))
			return out, nil
		}
	} else {
		bound := expr.Clone(sl.Pred)
		if _, err := expr.Bind(bound, schema); err != nil {
			child.wait()
			return nil, err
		}
		filter = func(rel *value.Relation) (*value.Relation, error) {
			out, st, err := algebra.SelectInterpreted(rel, bound)
			if err != nil {
				return nil, err
			}
			e.m.PE(ctx.s.pe).Advance(e.m.Cost().ScanCost(st.TuplesRead, false))
			return out, nil
		}
	}
	next := func() (*value.Relation, error) {
		for {
			rel, err := child.next()
			if err != nil || rel == nil {
				return nil, err
			}
			out, err := filter(rel)
			if err != nil {
				return nil, err
			}
			if len(out.Tuples) == 0 {
				continue
			}
			return out, nil
		}
	}
	return &relIter{next: next, wait: child.wait}, nil
}

// streamProject computes output expressions per batch, compiling the
// projector once for the whole stream.
func (e *Engine) streamProject(ctx *execCtx, p *plan.Project, child *relIter) (*relIter, error) {
	exprs := make([]expr.Expr, len(p.Exprs))
	for i, ex := range p.Exprs {
		exprs[i] = expr.Clone(ex)
	}
	proj, err := expr.CompileProjector(exprs, p.Names, p.Child.Schema())
	if err != nil {
		child.wait()
		return nil, err
	}
	next := func() (*value.Relation, error) {
		for {
			rel, err := child.next()
			if err != nil || rel == nil {
				return nil, err
			}
			out, st, err := algebra.ProjectExprs(rel, proj)
			if err != nil {
				return nil, err
			}
			out.Schema = p.Out
			e.m.PE(ctx.s.pe).Advance(e.m.Cost().BuildCost(st.TuplesEmitted))
			if len(out.Tuples) == 0 {
				continue
			}
			return out, nil
		}
	}
	return &relIter{next: next, wait: child.wait}, nil
}

// streamLimit truncates the stream after n tuples, without draining the
// remainder of the child.
func streamLimit(n int, child *relIter) *relIter {
	remaining := n
	next := func() (*value.Relation, error) {
		if remaining <= 0 {
			return nil, nil
		}
		rel, err := child.next()
		if err != nil || rel == nil {
			return nil, err
		}
		if len(rel.Tuples) > remaining {
			out := value.NewRelation(rel.Schema)
			out.Tuples = rel.Tuples[:remaining]
			rel = out
		}
		remaining -= len(rel.Tuples)
		return rel, nil
	}
	return &relIter{next: next, wait: child.wait}
}
