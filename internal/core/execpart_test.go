package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/value"
)

// setupStar creates a 3-table star schema sized so the optimizer picks
// repartition joins (every input estimate clears the 2000-row
// threshold) and loads identical data into the given engines.
func setupStar(t *testing.T, engines ...*Engine) {
	t.Helper()
	ddl := []string{
		`CREATE TABLE fact (id INT, a INT, b INT, amt INT, PRIMARY KEY (id))
			FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`,
		`CREATE TABLE dim1 (id INT, w INT, PRIMARY KEY (id))
			FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`,
		`CREATE TABLE dim2 (id INT, cat VARCHAR, PRIMARY KEY (id))
			FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`,
	}
	const dimRows = 2200
	const factRows = 4400
	cats := []string{"red", "green", "blue", "gray"}
	var d1, d2, f []string
	for i := 0; i < dimRows; i++ {
		d1 = append(d1, fmt.Sprintf("(%d, %d)", i, i%7))
		d2 = append(d2, fmt.Sprintf("(%d, '%s')", i, cats[i%len(cats)]))
	}
	for i := 0; i < factRows; i++ {
		f = append(f, fmt.Sprintf("(%d, %d, %d, %d)", i, i%dimRows, (i*13)%dimRows, i%97))
	}
	for _, e := range engines {
		s := e.NewSession()
		for _, stmt := range ddl {
			mustExec(t, s, stmt)
		}
		mustExec(t, s, "INSERT INTO dim1 VALUES "+strings.Join(d1, ", "))
		mustExec(t, s, "INSERT INTO dim2 VALUES "+strings.Join(d2, ", "))
		mustExec(t, s, "INSERT INTO fact VALUES "+strings.Join(f, ", "))
	}
}

// centralEngine builds an engine whose optimizer never parallelizes:
// every join is JoinCentral and every aggregate/sort/distinct runs at
// the coordinator — the reference the partitioned executor must match.
func centralEngine(t *testing.T) *Engine {
	t.Helper()
	noPar := optimizer.Options{Pushdown: true, JoinOrder: true, CSE: true, PointProbe: true}
	e, err := New(Config{NumPEs: 16, Optimizer: &noPar})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// partitionedPlanQueries are the differential suite: every shape the
// partitioned dataflow path must answer identically to the central
// executor — joins of joins, operators between scan and join, grouped
// and global aggregation over joins, parallel sort/distinct, swapped
// builds and residual predicates.
var partitionedPlanQueries = []string{
	// 1: plain join of two large tables (repartition, swapped build).
	`SELECT f.id, d1.w FROM fact f JOIN dim1 d1 ON f.a = d1.id`,
	// 2: join of joins (3-table star).
	`SELECT f.id, d1.w, d2.cat FROM fact f
		JOIN dim1 d1 ON f.a = d1.id JOIN dim2 d2 ON f.b = d2.id`,
	// 3: grouped aggregation over a join of joins.
	`SELECT d2.cat, COUNT(*) AS n, SUM(f.amt) AS total FROM fact f
		JOIN dim1 d1 ON f.a = d1.id JOIN dim2 d2 ON f.b = d2.id
		GROUP BY d2.cat`,
	// 4: global aggregate (no GROUP BY) over a join.
	`SELECT COUNT(*) AS n, MIN(f.amt) AS lo, AVG(d1.w) AS mean
		FROM fact f JOIN dim1 d1 ON f.a = d1.id`,
	// 5: selection and projection between scan and join.
	`SELECT f.id, f.amt + d1.w AS score FROM fact f
		JOIN dim1 d1 ON f.a = d1.id
		WHERE f.amt > 40 AND d1.w < 5`,
	// 6: residual (cross-table non-equi) predicate on the join.
	`SELECT f.id FROM fact f JOIN dim1 d1 ON f.a = d1.id
		WHERE f.amt > d1.w * 10`,
	// 7: ORDER BY over a join (per-partition sort + k-way merge).
	`SELECT f.id, d1.w FROM fact f JOIN dim1 d1 ON f.a = d1.id
		WHERE f.amt > 80 ORDER BY f.id DESC`,
	// 8: DISTINCT over a projected join.
	`SELECT DISTINCT d2.cat FROM fact f JOIN dim2 d2 ON f.b = d2.id`,
	// 9: HAVING over a partitioned grouped aggregate.
	`SELECT d2.cat, COUNT(*) AS n FROM fact f JOIN dim2 d2 ON f.b = d2.id
		GROUP BY d2.cat HAVING n > 10`,
	// 10: ORDER BY + LIMIT over an aggregate over a join.
	`SELECT d2.cat, SUM(f.amt) AS total FROM fact f JOIN dim2 d2 ON f.b = d2.id
		GROUP BY d2.cat ORDER BY total DESC LIMIT 2`,
	// 11: self-join over CSE-shared scans.
	`SELECT COUNT(*) AS n FROM fact x JOIN fact y ON x.id = y.id`,
}

// TestPartitionedMatchesCentral runs the differential suite on the
// exchange-based executor and on a central-only engine over identical
// data and requires identical result sets (order-sensitive where the
// query orders).
func TestPartitionedMatchesCentral(t *testing.T) {
	ePar := newEngine(t)
	eCen := centralEngine(t)
	setupStar(t, ePar, eCen)
	sPar, sCen := ePar.NewSession(), eCen.NewSession()
	for i, q := range partitionedPlanQueries {
		a, err := sPar.Query(q)
		if err != nil {
			t.Fatalf("query %d partitioned: %v", i+1, err)
		}
		b, err := sCen.Query(q)
		if err != nil {
			t.Fatalf("query %d central: %v", i+1, err)
		}
		ordered := strings.Contains(strings.ToUpper(q), "ORDER BY")
		if ordered {
			if a.Len() != b.Len() {
				t.Errorf("query %d: %d rows partitioned vs %d central", i+1, a.Len(), b.Len())
				continue
			}
			for r := range a.Tuples {
				if !value.EqualTuples(a.Tuples[r], b.Tuples[r]) {
					t.Errorf("query %d row %d: %v != %v", i+1, r, a.Tuples[r], b.Tuples[r])
					break
				}
			}
		} else if !a.SameBag(b) {
			t.Errorf("query %d: partitioned result differs from central\npartitioned: %d rows\ncentral: %d rows",
				i+1, a.Len(), b.Len())
		}
	}
}

// TestExplainShowsPartitionedPlan proves via EXPLAIN that a join of
// joins with aggregation runs fully partitioned: Exchange nodes are in
// the tree, joins are repartitioned, the aggregate is pushed down, and
// no central join remains.
func TestExplainShowsPartitionedPlan(t *testing.T) {
	e := newEngine(t)
	setupStar(t, e)
	s := e.NewSession()
	res := mustExec(t, s, `EXPLAIN SELECT d2.cat, COUNT(*) AS n FROM fact f
		JOIN dim1 d1 ON f.a = d1.id JOIN dim2 d2 ON f.b = d2.id
		GROUP BY d2.cat`)
	if res.Rel == nil || res.Rel.Len() == 0 {
		t.Fatal("EXPLAIN produced no rows")
	}
	if got := res.Rel.Schema.Len(); got != 1 {
		t.Fatalf("EXPLAIN schema has %d columns", got)
	}
	var b strings.Builder
	for _, row := range res.Rel.Tuples {
		b.WriteString(row[0].Str())
		b.WriteByte('\n')
	}
	planStr := b.String()
	for _, want := range []string{"Exchange(hash", "method=repartition", "pushdown=true"} {
		if !strings.Contains(planStr, want) {
			t.Errorf("plan lacks %q:\n%s", want, planStr)
		}
	}
	if strings.Contains(planStr, "method=central") {
		t.Errorf("plan still contains a central join:\n%s", planStr)
	}
}

// TestExplainTakesNoLocks runs EXPLAIN on a table whose fragments are
// all exclusively locked by another transaction; it must return
// immediately instead of queueing on the lock table.
func TestExplainTakesNoLocks(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `UPDATE emp SET salary = salary + 1`) // X-locks every fragment
	s2 := e.NewSession()
	res, err := s2.Exec(`EXPLAIN SELECT e.id FROM emp e JOIN dept d ON e.dept = d.name`)
	if err != nil {
		t.Fatalf("EXPLAIN blocked or failed: %v", err)
	}
	if res.Rel == nil || res.Rel.Len() == 0 {
		t.Fatal("EXPLAIN produced no plan")
	}
	mustExec(t, s, `ROLLBACK`)
}

// TestExplainAccessAnnotations pins the EXPLAIN contract: SELECT plans
// carry the snapshot-read access line under MVCC, DML statements report
// the locked-write discipline, and nested EXPLAIN stays rejected.
func TestExplainAccessAnnotations(t *testing.T) {
	e := newEngine(t)
	s := setupEmp(t, e)
	res, err := s.Exec(`EXPLAIN SELECT * FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "snapshot read (no locks)") {
		t.Fatalf("EXPLAIN SELECT plan lacks snapshot-read access line:\n%s", res.Plan)
	}
	res, err = s.Exec(`EXPLAIN INSERT INTO dept VALUES ('x', 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "locked write (2PL exclusive + first-committer-wins)") {
		t.Fatalf("EXPLAIN INSERT plan lacks locked-write access line:\n%s", res.Plan)
	}
	if _, err := s.Exec(`EXPLAIN EXPLAIN SELECT * FROM emp`); err == nil {
		t.Fatal("nested EXPLAIN succeeded")
	}
}

// TestRestoreSwappedAllocs pins the join-emission fix: restoring the
// pre-swap column order of a whole relation reuses one scratch buffer
// instead of allocating a fresh tuple per row.
func TestRestoreSwappedAllocs(t *testing.T) {
	const rows = 1000
	tuples := make([]value.Tuple, rows)
	for i := range tuples {
		tuples[i] = value.NewTuple(
			value.NewInt(int64(i)), value.NewString("l"),
			value.NewInt(int64(i*2)), value.NewString("r"), value.NewInt(7),
		)
	}
	allocs := testing.AllocsPerRun(10, func() {
		restoreSwapped(tuples, 2)
		restoreSwapped(tuples, 3) // rotate back so the fixture stays valid
	})
	if allocs > 2 { // one scratch buffer per call
		t.Fatalf("restoreSwapped allocates %.0f times per double-restore; want <= 2", allocs)
	}
	// And it must actually restore: rotating by lw then by len-lw is a
	// round trip, so spot-check a single rotation.
	tup := value.NewTuple(value.NewInt(1), value.NewInt(2), value.NewInt(3))
	restoreSwapped([]value.Tuple{tup}, 1)
	want := []int64{2, 3, 1}
	for i, w := range want {
		if tup[i].Int() != w {
			t.Fatalf("restored tuple = %v, want %v", tup, want)
		}
	}
}

// TestSharedScanCacheNotMutated is the CSE aliasing regression suite:
// execScan hands out relations whose Tuples alias the per-query cache
// (and the fragment stores). No downstream operator — the swapped-join
// restore, in-place projection batches, or the partition splitters —
// may mutate those tuples when one shared scan feeds two plan arms.
func TestSharedScanCacheNotMutated(t *testing.T) {
	ePar := newEngine(t)
	eCen := centralEngine(t)
	setupStar(t, ePar, eCen)
	sPar, sCen := ePar.NewSession(), eCen.NewSession()

	// Snapshot the base table before any shared-scan query runs.
	before, err := sPar.Query(`SELECT * FROM fact`)
	if err != nil {
		t.Fatal(err)
	}
	beforeCopy := before.Clone()

	queries := []string{
		// Self-join: both arms share one scan; the join output is swapped
		// or not depending on estimates, and the partition splitters
		// redistribute the cached tuples into exchange buckets.
		`SELECT x.amt, y.amt FROM fact x JOIN fact y ON x.id = y.id WHERE x.amt > 50`,
		// Shared scan feeding a projection arm (in-place ApplyBatch) and
		// a join arm at once.
		`SELECT x.id + 1 AS next, y.b FROM fact x JOIN fact y ON x.id = y.id`,
		// Shared scan under aggregation over the join.
		`SELECT COUNT(*) AS n, SUM(x.amt) AS s FROM fact x JOIN fact y ON x.id = y.id`,
	}
	for i, q := range queries {
		a, err := sPar.Query(q)
		if err != nil {
			t.Fatalf("query %d: %v", i+1, err)
		}
		b, err := sCen.Query(q)
		if err != nil {
			t.Fatalf("query %d central: %v", i+1, err)
		}
		if !a.SameBag(b) {
			t.Errorf("query %d: shared-scan result differs from central (%d vs %d rows)", i+1, a.Len(), b.Len())
		}
	}

	// The base table must be bit-identical to the pre-query snapshot: any
	// in-place mutation of cached/stored tuples would show here.
	after, err := sPar.Query(`SELECT * FROM fact`)
	if err != nil {
		t.Fatal(err)
	}
	if !after.SameBag(beforeCopy) {
		t.Fatal("base table changed after read-only shared-scan queries")
	}
	// Re-running the first query must still agree with central (a
	// mutated CSE cache inside one statement would already have tripped
	// the SameBag check above; this guards cross-statement state).
	a, err := sPar.Query(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := sCen.Query(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !a.SameBag(b) {
		t.Error("rerun of shared-scan query diverged")
	}
}

// TestPartitionedConcurrentSessions hammers the partitioned paths from
// concurrent sessions (run under -race in CI): joins of joins, grouped
// aggregates and sorts all exercising exchanges at once.
func TestPartitionedConcurrentSessions(t *testing.T) {
	e := newEngine(t)
	setupStar(t, e)
	queries := []string{
		partitionedPlanQueries[1],
		partitionedPlanQueries[2],
		partitionedPlanQueries[6],
		partitionedPlanQueries[10],
	}
	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			for i := 0; i < 6; i++ {
				if _, err := s.Query(queries[(w+i)%len(queries)]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
}
