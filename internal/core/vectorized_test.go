package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/value"
)

// rowEngine builds an engine with columnar execution forced off — the
// tuple-at-a-time reference the vectorized executor must match (and the
// E20 baseline configuration).
func rowEngine(t *testing.T) *Engine {
	t.Helper()
	off := false
	e, err := New(Config{NumPEs: 16, Vectorized: &off})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// vectorizedScanQueries extend the partitioned plan corpus with the
// scan-heavy shapes the columnar path owns end-to-end: filters over the
// column cache, computed projections, pushdown and partial aggregation,
// parallel sort/distinct directly over scans, and a row-fallback kernel
// (LIKE) inside an otherwise vectorized filter.
var vectorizedScanQueries = []string{
	`SELECT * FROM fact WHERE amt > 50`,
	`SELECT id, amt * 2 + 1 AS twice FROM fact WHERE amt > 90 OR amt < 3`,
	`SELECT COUNT(*) AS n, SUM(amt) AS s, MIN(amt) AS lo, MAX(amt) AS hi, AVG(amt) AS m FROM fact`,
	`SELECT a, COUNT(*) AS n, SUM(amt) AS s FROM fact WHERE amt < 80 GROUP BY a`,
	`SELECT DISTINCT cat FROM dim2`,
	`SELECT id, amt FROM fact WHERE amt > 90 ORDER BY id DESC LIMIT 10`,
	`SELECT cat FROM dim2 WHERE cat LIKE 'g%'`,
	`SELECT w FROM dim1 WHERE 3 < w`, // constant on the left of the comparison
}

// TestVectorizedMatchesRow is the tentpole differential: every plan
// shape in the PR-5 partitioned corpus plus the scan-heavy extensions
// must produce identical results on the columnar executor and on an
// engine with Vectorized=false, over identical data. Run under -race in
// CI alongside the rest of the package.
func TestVectorizedMatchesRow(t *testing.T) {
	eVec := newEngine(t) // vectorized defaults on
	eRow := rowEngine(t)
	setupStar(t, eVec, eRow)
	sVec, sRow := eVec.NewSession(), eRow.NewSession()
	queries := append(append([]string{}, partitionedPlanQueries...), vectorizedScanQueries...)
	for i, q := range queries {
		a, err := sVec.Query(q)
		if err != nil {
			t.Fatalf("query %d vectorized: %v", i+1, err)
		}
		b, err := sRow.Query(q)
		if err != nil {
			t.Fatalf("query %d row: %v", i+1, err)
		}
		ordered := strings.Contains(strings.ToUpper(q), "ORDER BY")
		if ordered {
			if a.Len() != b.Len() {
				t.Errorf("query %d: %d rows vectorized vs %d row", i+1, a.Len(), b.Len())
				continue
			}
			for r := range a.Tuples {
				if !value.EqualTuples(a.Tuples[r], b.Tuples[r]) {
					t.Errorf("query %d row %d: %v != %v", i+1, r, a.Tuples[r], b.Tuples[r])
					break
				}
			}
		} else if !a.SameBag(b) {
			t.Errorf("query %d: vectorized result differs from row\nvectorized: %d rows\nrow: %d rows",
				i+1, a.Len(), b.Len())
		}
	}
}

// TestVectorizedMatchesRowAfterWrites drives the column-cache
// invalidation through SQL: committed updates/deletes/inserts must be
// visible to the next vectorized scan, in-transaction reads must see
// their own uncommitted writes (the batch path declines to the row
// overlay), and both executors agree at every step.
func TestVectorizedMatchesRowAfterWrites(t *testing.T) {
	eVec := newEngine(t)
	eRow := rowEngine(t)
	setupStar(t, eVec, eRow)
	sVec, sRow := eVec.NewSession(), eRow.NewSession()

	const q = `SELECT a, COUNT(*) AS n, SUM(amt) AS s FROM fact WHERE amt > 20 GROUP BY a`
	check := func(step string) {
		t.Helper()
		a, err := sVec.Query(q)
		if err != nil {
			t.Fatalf("%s vectorized: %v", step, err)
		}
		b, err := sRow.Query(q)
		if err != nil {
			t.Fatalf("%s row: %v", step, err)
		}
		if !a.SameBag(b) {
			t.Errorf("%s: vectorized diverged (%d vs %d rows)", step, a.Len(), b.Len())
		}
	}
	check("before writes")
	for _, stmt := range []string{
		`UPDATE fact SET amt = amt + 100 WHERE amt < 10`,
		`DELETE FROM fact WHERE id >= 4300`,
		`INSERT INTO fact VALUES (9001, 1, 1, 55), (9002, 2, 2, 66)`,
	} {
		mustExec(t, sVec, stmt)
		mustExec(t, sRow, stmt)
		check(stmt)
	}

	// Inside an explicit transaction, reads must see the session's own
	// uncommitted writes; after rollback the committed image returns.
	mustExec(t, sVec, `BEGIN`)
	mustExec(t, sVec, `UPDATE fact SET amt = 0 WHERE id < 100`)
	in, err := sVec.Query(`SELECT COUNT(*) AS n FROM fact WHERE amt = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if in.Tuples[0][0].Int() < 100 {
		t.Errorf("in-txn read misses own writes: %v", in.Tuples)
	}
	mustExec(t, sVec, `ROLLBACK`)
	check("after rollback")
}

// TestExplainShowsVectorized pins the EXPLAIN contract: eligible scans
// annotate as vectorized, a Vectorized=false engine reports
// row-at-a-time, and the point-probe fast path (which the batch
// executor deliberately leaves alone) stays row.
func TestExplainShowsVectorized(t *testing.T) {
	eVec := newEngine(t)
	sVec := setupEmp(t, eVec)
	res := mustExec(t, sVec, `EXPLAIN SELECT dept, COUNT(*) AS n FROM emp WHERE salary > 100 GROUP BY dept`)
	if !strings.Contains(res.Plan, "execution: vectorized (columnar batches)") {
		t.Errorf("eligible plan not annotated vectorized:\n%s", res.Plan)
	}
	// The pk point probe is not a batch shape.
	res = mustExec(t, sVec, `EXPLAIN SELECT * FROM emp WHERE id = 3`)
	if !strings.Contains(res.Plan, "execution: row-at-a-time") {
		t.Errorf("point probe annotated vectorized:\n%s", res.Plan)
	}

	eRow := rowEngine(t)
	sRow := setupEmp(t, eRow)
	res = mustExec(t, sRow, `EXPLAIN SELECT dept, COUNT(*) AS n FROM emp WHERE salary > 100 GROUP BY dept`)
	if !strings.Contains(res.Plan, "execution: row-at-a-time") {
		t.Errorf("Vectorized=false plan not annotated row-at-a-time:\n%s", res.Plan)
	}
}

// TestVectorizedMemBudget: a column-cache build is this statement's
// materialization and must charge the tenant budget — even when the
// query's own result is tiny. The row engine under the same budget
// answers fine, so a pass here proves the build (not the result) was
// charged.
func TestVectorizedMemBudget(t *testing.T) {
	eVec := newEngine(t)
	sVec := setupEmp(t, eVec)
	eRow := rowEngine(t)
	sRow := setupEmp(t, eRow)

	// One row out, whole table scanned: the row path materializes only
	// the ~75-byte result, the columnar path additionally builds ~2 KB of
	// column cache. A budget between the two separates them.
	const q = `SELECT id FROM emp WHERE salary = 570`
	sVec.SetMemBudget(512)
	sRow.SetMemBudget(512)
	if _, err := sVec.Query(q); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("vectorized scan under tiny budget err = %v, want ErrMemBudget", err)
	}
	if _, err := sRow.Query(q); err != nil {
		t.Fatalf("row scan under the same budget: %v", err)
	}
	// A sane budget admits the build; the warm cache then costs nothing.
	sVec.SetMemBudget(1 << 20)
	if _, err := sVec.Query(q); err != nil {
		t.Fatalf("vectorized scan under sane budget: %v", err)
	}
	sVec.SetMemBudget(512)
	if _, err := sVec.Query(q); err != nil {
		t.Fatalf("warm-cache scan re-charged the build: %v", err)
	}
}

// TestVectorizedStreamScan drives the cursor's columnar leaf path: a
// streamed filter scan on the vectorized engine must deliver exactly
// the rows the row engine materializes.
func TestVectorizedStreamScan(t *testing.T) {
	eVec := newEngine(t)
	eRow := rowEngine(t)
	setupStar(t, eVec, eRow)
	sVec, sRow := eVec.NewSession(), eRow.NewSession()

	const q = `SELECT id, amt FROM fact WHERE amt > 60`
	want, err := sRow.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := sVec.Stream(q)
	if err != nil {
		t.Fatal(err)
	}
	if cur == nil {
		t.Fatal("SELECT did not stream")
	}
	got := value.NewRelation(cur.Schema())
	for {
		batch, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		got.Tuples = append(got.Tuples, batch.Tuples...)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if !got.SameBag(want) {
		t.Errorf("streamed vectorized scan = %d rows, row engine = %d", got.Len(), want.Len())
	}
}

// TestVectorizedConcurrentReadWrite hammers the column cache from
// concurrent readers while a writer keeps invalidating it (run under
// -race in CI): every read must still agree with a row engine that saw
// the same committed writes.
func TestVectorizedConcurrentReadWrite(t *testing.T) {
	e := newEngine(t)
	setupStar(t, e)
	queries := []string{
		`SELECT COUNT(*) AS n FROM fact WHERE amt > 50`,
		`SELECT a, SUM(amt) AS s FROM fact WHERE amt < 90 GROUP BY a`,
		partitionedPlanQueries[0],
	}
	const readers = 3
	var wg sync.WaitGroup
	errs := make([]error, readers+1)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			for i := 0; i < 8; i++ {
				if _, err := s.Query(queries[(w+i)%len(queries)]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := e.NewSession()
		defer s.Close()
		for i := 0; i < 8; i++ {
			if _, err := s.Exec(`UPDATE fact SET amt = amt + 1 WHERE id < 50`); err != nil {
				errs[readers] = err
				return
			}
		}
	}()
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
}
