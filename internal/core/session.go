package core

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/ofm"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/txn"
	"repro/internal/value"
)

// Session is one client's connection to the engine. Each session gets
// its own coordinator PE — the paper's "for each query a new instance is
// created, possibly running at its own processor" — and may hold an
// explicit transaction across statements.
type Session struct {
	e  *Engine
	pe int
	tx *txn.Txn

	// user is the authenticated tenant (nil = unrestricted local
	// session); every statement checks its per-table grants.
	user *catalog.User
	// memBudget caps one statement's materialized working memory in
	// bytes (0 = unlimited); breaches abort with ErrMemBudget.
	memBudget int64

	// stmtTimeout bounds lock waits for this session's statements; zero
	// waits forever. A timed-out statement aborts its transaction with a
	// retryable txn.ErrTimeout instead of blocking behind a lock holder.
	stmtTimeout time.Duration

	// curMu guards cursors: every open Cursor registers here so Close can
	// settle abandoned streams (releasing their snapshot pins) even when
	// the caller never closed them — an abnormal teardown must not wedge
	// the GC horizon.
	curMu   sync.Mutex
	cursors map[*Cursor]struct{}
}

// SetStatementTimeout bounds how long this session's statements may wait
// on locks. It applies to transactions begun after the call (including
// autocommit ones); d <= 0 restores the unbounded default. Equivalent to
// executing `SET STATEMENT_TIMEOUT=<ms>`.
func (s *Session) SetStatementTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.stmtTimeout = d
	if s.tx != nil {
		s.tx.SetLockTimeout(d)
	}
}

// NewSession opens a session on a round-robin-assigned coordinator PE.
func (e *Engine) NewSession() *Session {
	return &Session{e: e, pe: e.coordinatorPE()}
}

// PE returns the session's coordinator processing element.
func (s *Session) PE() int { return s.pe }

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.tx != nil }

// transaction returns the open transaction, or begins an autocommit one.
func (s *Session) transaction() (*txn.Txn, bool, error) {
	if s.tx != nil {
		if s.tx.State() != txn.Active {
			return nil, false, fmt.Errorf("core: transaction is %s; ROLLBACK to continue", s.tx.State())
		}
		return s.tx, false, nil
	}
	tx := s.e.txns.Begin()
	tx.SetLockTimeout(s.stmtTimeout)
	return tx, true, nil
}

// readView establishes the version view for one read-only statement and
// returns the transaction to execute under (nil when MVCC needs none),
// the view, and a finish func the caller invokes exactly once with the
// execution error; finish settles autocommit transactions, releases the
// snapshot pin, and returns the final error.
//
// Under MVCC a read inside an explicit transaction sees the snapshot
// pinned at the transaction's first read (plus its own pending writes);
// a standalone SELECT pins a fresh snapshot for just that statement. In
// both cases no transaction work happens on the read path and no locks
// are taken. Under the 2PL baseline reads run inside a (possibly
// autocommit) transaction holding shared fragment locks and observe the
// latest committed state.
func (s *Session) readView() (*txn.Txn, ofm.View, func(error) error, error) {
	if s.e.mvcc {
		if s.tx != nil {
			if s.tx.State() != txn.Active {
				return nil, ofm.View{}, nil, fmt.Errorf("core: transaction is %s; ROLLBACK to continue", s.tx.State())
			}
			view := ofm.View{TS: s.tx.Snapshot(), Tx: s.tx.ID()}
			return s.tx, view, func(err error) error { return err }, nil
		}
		ts, release := s.e.txns.PinSnapshot()
		return nil, ofm.View{TS: ts}, func(err error) error { release(); return err }, nil
	}
	tx, autocommit, err := s.transaction()
	if err != nil {
		return nil, ofm.View{}, nil, err
	}
	view := ofm.View{TS: ofm.LatestTS, Tx: tx.ID()}
	finish := func(err error) error {
		if !autocommit {
			return err
		}
		if err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}
	return tx, view, finish, nil
}

// Result is the outcome of one statement.
type Result struct {
	// Rel holds query output (SELECT / PRISMAlog).
	Rel *value.Relation
	// Affected counts rows touched by DML.
	Affected int
	// Msg describes DDL and transaction-control outcomes.
	Msg string
	// Plan is the optimized logical plan of a SELECT (debugging aid).
	Plan string
	// SimTime is the simulated response time on the 1988 machine model:
	// the largest per-PE virtual clock advance during the statement.
	SimTime time.Duration
	// WallTime is the host's real execution time.
	WallTime time.Duration
}

// Exec executes one SQL statement. Cacheable statements (SELECT and
// DML) go through the engine's plan cache: the text is normalized with
// its literals lifted out, and a hit skips parsing and optimization
// entirely, executing the cached plan with the literals bound — so even
// unprepared autocommit statements pay the parse/optimize cost once per
// statement shape.
func (s *Session) Exec(sql string) (*Result, error) {
	wallStart := time.Now()
	simStart := s.e.m.MaxClock()
	res, err := s.execText(sql)
	if err != nil {
		return nil, err
	}
	res.WallTime = time.Since(wallStart)
	res.SimTime = s.e.m.MaxClock() - simStart
	return res, nil
}

// setTimeoutRe matches the session-variable statement
// `SET STATEMENT_TIMEOUT = <milliseconds>` (0 disables the timeout).
var setTimeoutRe = regexp.MustCompile(`(?i)^\s*SET\s+STATEMENT_TIMEOUT\s*=\s*(\d+)\s*;?\s*$`)

// execSet intercepts session-variable statements before the SQL parser
// sees the text; handled reports whether sql was one.
func (s *Session) execSet(sql string) (*Result, bool) {
	m := setTimeoutRe.FindStringSubmatch(sql)
	if m == nil {
		return nil, false
	}
	ms, err := strconv.Atoi(m[1])
	if err != nil { // unreachable past the \d+ match save for overflow
		ms = 0
	}
	s.SetStatementTimeout(time.Duration(ms) * time.Millisecond)
	return &Result{Msg: fmt.Sprintf("statement_timeout = %dms", ms)}, true
}

// promoteRe matches the admin statement `PROMOTE` — fail over this
// replica to primary (see Engine.Promote).
var promoteRe = regexp.MustCompile(`(?i)^\s*PROMOTE\s*;?\s*$`)

// execText routes one statement through the plan cache when possible,
// falling back to the parse-and-execute path.
func (s *Session) execText(sql string) (*Result, error) {
	if res, handled := s.execSet(sql); handled {
		return res, nil
	}
	if res, handled, err := s.execAdmin(sql); handled {
		return res, err
	}
	if promoteRe.MatchString(sql) {
		if err := s.e.Promote(); err != nil {
			return nil, err
		}
		return &Result{Msg: fmt.Sprintf("promoted to primary (epoch %d)", s.e.Epoch())}, nil
	}
	pc := s.e.plans
	if pc == nil {
		return s.parseExec(sql)
	}
	key, lits, ok := sqlparse.Normalize(sql)
	if !ok {
		return s.parseExec(sql)
	}
	if ps, hit := pc.get(key); hit {
		if ps == nil {
			// Statement shape known non-cacheable.
			return s.parseExec(sql)
		}
		return s.execAuto(ps, lits, sql)
	}
	cs, vals, err := s.e.compileAutoFrom(sql, lits)
	if err == errNotCacheable {
		pc.put(key, nil)
		return s.parseExec(sql)
	}
	if err != nil {
		return nil, err
	}
	ps := newPreparedStmt(s.e, sql, true, cs)
	pc.put(key, ps)
	return s.execAuto(ps, vals, sql)
}

// execAuto runs a plan-cached statement with its lifted literals. A
// parameter-kind mismatch (this statement's literal kind differs from
// the one the shared plan was typed for, e.g. `id = 1.5` hitting the
// plan cached for `id = 7`) must not surface as an error the uncached
// engine would never raise — it falls back to the ordinary path.
func (s *Session) execAuto(ps *PreparedStmt, lits []value.Value, sql string) (*Result, error) {
	res, err := s.execPrepared(ps, lits)
	if err != nil && errors.Is(err, errBindKind) {
		return s.parseExec(sql)
	}
	return res, err
}

// parseExec is the uncached path: parse and run.
func (s *Session) parseExec(sql string) (*Result, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.execStmt(st)
}

func (s *Session) execStmt(st sqlparse.Stmt) (*Result, error) {
	if err := s.checkStmt(st); err != nil {
		return nil, err
	}
	switch t := st.(type) {
	case *sqlparse.CreateTable:
		if s.e.IsReadOnly() {
			return nil, s.e.readOnlyErr("CREATE TABLE")
		}
		if err := s.e.createFromAST(t); err != nil {
			return nil, err
		}
		if s.user != nil {
			// The creator owns what it creates.
			if err := s.e.cat.Grant(s.user.Name, t.Name, catalog.PrivAll); err != nil {
				return nil, err
			}
		}
		return &Result{Msg: fmt.Sprintf("table %s created", t.Name)}, nil

	case *sqlparse.DropTable:
		if s.e.IsReadOnly() {
			return nil, s.e.readOnlyErr("DROP TABLE")
		}
		if err := s.e.DropTable(t.Name); err != nil {
			return nil, err
		}
		return &Result{Msg: fmt.Sprintf("table %s dropped", t.Name)}, nil

	case *sqlparse.Insert:
		n, err := s.e.execInsert(s, t)
		if err != nil {
			return nil, err
		}
		return &Result{Affected: n}, nil

	case *sqlparse.Update:
		n, err := s.e.execUpdate(s, t)
		if err != nil {
			return nil, err
		}
		return &Result{Affected: n}, nil

	case *sqlparse.Delete:
		n, err := s.e.execDelete(s, t)
		if err != nil {
			return nil, err
		}
		return &Result{Affected: n}, nil

	case *sqlparse.Select:
		return s.execSelect(t)

	case *sqlparse.Explain:
		return s.execExplain(t)

	case *sqlparse.Begin:
		if s.tx != nil {
			return nil, fmt.Errorf("core: transaction already open")
		}
		s.tx = s.e.txns.Begin()
		s.tx.SetLockTimeout(s.stmtTimeout)
		return &Result{Msg: "transaction started"}, nil

	case *sqlparse.Commit:
		if s.tx == nil {
			return nil, fmt.Errorf("core: no open transaction")
		}
		err := s.tx.Commit()
		s.tx = nil
		if err != nil {
			return nil, err
		}
		return &Result{Msg: "committed"}, nil

	case *sqlparse.Rollback:
		if s.tx == nil {
			return nil, fmt.Errorf("core: no open transaction")
		}
		s.tx.Abort()
		s.tx = nil
		return &Result{Msg: "rolled back"}, nil
	}
	return nil, fmt.Errorf("core: unhandled statement %T", st)
}

// execExplain answers EXPLAIN <stmt>: translate and optimize the
// wrapped statement exactly as execution would, but return the plan's
// rendering as a one-column relation instead of running it — no
// fragments are scanned and no locks are taken, so EXPLAIN is safe
// against any workload. The chosen join methods and Exchange
// partitioning annotations are exactly what execution will do, and a
// trailing access line states the concurrency-control discipline the
// statement runs under (snapshot read vs locked read vs locked write).
func (s *Session) execExplain(ex *sqlparse.Explain) (*Result, error) {
	var planStr string
	switch t := ex.Stmt.(type) {
	case *sqlparse.Select:
		root, err := s.e.translateSelect(t)
		if err != nil {
			return nil, err
		}
		root = s.e.opt.Optimize(root)
		planStr = plan.Format(root)
		if s.e.mvcc {
			planStr += "access: snapshot read (no locks)\n"
		} else {
			planStr += "access: locked read (2PL shared)\n"
		}
		// The execution line states which executor the data-heavy part of
		// the plan runs on. Vectorized plans fall back to row-at-a-time
		// inside explicit transactions (the write overlay is row oriented).
		if s.e.planVectorized(root) {
			planStr += "execution: vectorized (columnar batches)\n"
		} else {
			planStr += "execution: row-at-a-time\n"
		}
	case *sqlparse.Insert:
		planStr = fmt.Sprintf("Insert %s\n%s", t.Table, s.writeAccessLine())
	case *sqlparse.Update:
		planStr = fmt.Sprintf("Update %s\n%s", t.Table, s.writeAccessLine())
	case *sqlparse.Delete:
		planStr = fmt.Sprintf("Delete %s\n%s", t.Table, s.writeAccessLine())
	default:
		return nil, fmt.Errorf("core: EXPLAIN supports SELECT and DML statements, got %T", ex.Stmt)
	}
	rel := value.NewRelation(value.MustSchema("QUERY PLAN", "VARCHAR"))
	for _, line := range strings.Split(strings.TrimRight(planStr, "\n"), "\n") {
		rel.Append(value.NewTuple(value.NewString(line)))
	}
	return &Result{Rel: rel, Plan: planStr}, nil
}

// writeAccessLine renders the EXPLAIN access annotation for DML.
func (s *Session) writeAccessLine() string {
	if s.e.mvcc {
		return "access: locked write (2PL exclusive + first-committer-wins)\n"
	}
	return "access: locked write (2PL exclusive)\n"
}

// execSelect translates, optimizes and runs a SELECT.
func (s *Session) execSelect(sel *sqlparse.Select) (*Result, error) {
	root, err := s.e.translateSelect(sel)
	if err != nil {
		return nil, err
	}
	root = s.e.opt.Optimize(root)
	return s.runSelectPlan(root)
}

// Query is a convenience wrapper returning just the relation.
func (s *Session) Query(sql string) (*value.Relation, error) {
	res, err := s.Exec(sql)
	if err != nil {
		return nil, err
	}
	if res.Rel == nil {
		return nil, fmt.Errorf("core: statement produced no relation")
	}
	return res.Rel, nil
}

// Close aborts any open transaction and settles any cursors still
// open, releasing their snapshot pins (or autocommit locks) so an
// abandoned stream cannot hold back version garbage collection.
func (s *Session) Close() {
	s.curMu.Lock()
	open := make([]*Cursor, 0, len(s.cursors))
	for c := range s.cursors {
		open = append(open, c)
	}
	s.curMu.Unlock()
	for _, c := range open {
		c.Close()
	}
	if s.tx != nil {
		s.tx.Abort()
		s.tx = nil
	}
}

// registerCursor tracks an open cursor until finish unregisters it.
func (s *Session) registerCursor(c *Cursor) {
	s.curMu.Lock()
	if s.cursors == nil {
		s.cursors = map[*Cursor]struct{}{}
	}
	s.cursors[c] = struct{}{}
	s.curMu.Unlock()
}

func (s *Session) unregisterCursor(c *Cursor) {
	s.curMu.Lock()
	delete(s.cursors, c)
	s.curMu.Unlock()
}
