package core

import (
	"fmt"
	"sync"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/fragment"
	"repro/internal/plan"
	"repro/internal/pool"
	"repro/internal/txn"
	"repro/internal/value"
)

// execCtx carries per-query state: the session (locks, coordinator PE)
// and the common-subexpression cache the optimizer's CSE rule feeds.
type execCtx struct {
	s      *Session
	tx     *txn.Txn
	shared map[string]*value.Relation
	mu     sync.Mutex
}

func (ctx *execCtx) cacheGet(key string) (*value.Relation, bool) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	r, ok := ctx.shared[key]
	return r, ok
}

func (ctx *execCtx) cachePut(key string, r *value.Relation) {
	ctx.mu.Lock()
	ctx.shared[key] = r
	ctx.mu.Unlock()
}

// execPlan runs an optimized plan under the given transaction.
func (e *Engine) execPlan(s *Session, tx *txn.Txn, root plan.Node) (*value.Relation, error) {
	ctx := &execCtx{s: s, tx: tx, shared: map[string]*value.Relation{}}
	return e.exec(ctx, root)
}

func (e *Engine) exec(ctx *execCtx, n plan.Node) (*value.Relation, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return e.execScan(ctx, t)
	case *plan.IndexProbe:
		return e.execIndexProbe(ctx, t)
	case *plan.Select:
		return e.execSelect(ctx, t)
	case *plan.Project:
		return e.execProject(ctx, t)
	case *plan.Join:
		return e.execJoin(ctx, t)
	case *plan.Aggregate:
		return e.execAggregate(ctx, t)
	case *plan.Sort:
		rel, err := e.exec(ctx, t.Child)
		if err != nil {
			return nil, err
		}
		out, st, err := algebra.Sort(rel, t.Cols, t.Desc)
		if err != nil {
			return nil, err
		}
		e.m.PE(ctx.s.pe).Advance(e.m.Cost().CompareCost(st.Compares))
		return out, nil
	case *plan.Distinct:
		rel, err := e.exec(ctx, t.Child)
		if err != nil {
			return nil, err
		}
		out, st := algebra.Distinct(rel)
		e.m.PE(ctx.s.pe).Advance(e.m.Cost().HashCost(st.Hashes))
		return out, nil
	case *plan.Limit:
		rel, err := e.exec(ctx, t.Child)
		if err != nil {
			return nil, err
		}
		out, _ := algebra.Limit(rel, t.N)
		return out, nil
	}
	return nil, fmt.Errorf("core: unknown plan node %T", n)
}

// lockFragments S-locks the listed fragments of a table for the query.
func (e *Engine) lockFragments(ctx *execCtx, t *table, frags []int) error {
	for _, fi := range frags {
		if err := ctx.tx.Lock(t.frags[fi].ofm.Name(), txn.Shared); err != nil {
			return err
		}
	}
	return nil
}

// execScan runs a (possibly filtered) parallel scan over a table's
// fragments, pruning fragments by the predicate where the fragmentation
// scheme allows. Shared scans hit the CSE cache.
func (e *Engine) execScan(ctx *execCtx, sc *plan.Scan) (*value.Relation, error) {
	key := ""
	if sc.Shared {
		key = sc.Table + "|"
		if sc.Pred != nil {
			key += sc.Pred.String()
		}
		if rel, ok := ctx.cacheGet(key); ok {
			out := value.NewRelation(sc.Out)
			out.Tuples = rel.Tuples
			return out, nil
		}
	}
	t, err := e.lookupTable(sc.Table)
	if err != nil {
		return nil, err
	}
	frags := e.pruneFragments(t, sc.Pred)
	if err := e.lockFragments(ctx, t, frags); err != nil {
		return nil, err
	}
	parts, err := e.parallelScan(ctx, t, frags, sc.Pred)
	if err != nil {
		return nil, err
	}
	out := value.NewRelation(sc.Out)
	for _, p := range parts {
		out.Tuples = append(out.Tuples, p.Tuples...)
	}
	if sc.Shared {
		ctx.cachePut(key, out)
	}
	return out, nil
}

// execIndexProbe runs the point-query fast path: resolve the key, route
// straight to the fragment(s) the fragmentation scheme allows, and let
// each OFM answer with a direct hash-index lookup — no scan, no
// predicate compilation, no full-relation materialization. Like the
// colocated join, the probe calls the OFM directly under the fragment's
// shared lock and charges the simulated network for the request and
// reply, skipping the process-message round trip.
func (e *Engine) execIndexProbe(ctx *execCtx, pr *plan.IndexProbe) (*value.Relation, error) {
	t, key, frags, err := e.probeTargets(ctx, pr)
	if err != nil {
		return nil, err
	}
	out := value.NewRelation(pr.Out)
	for _, fi := range frags {
		rel, err := e.probeFragment(ctx, t.frags[fi], pr, key)
		if err != nil {
			return nil, err
		}
		if out.Tuples == nil {
			out.Tuples = rel.Tuples
		} else {
			out.Tuples = append(out.Tuples, rel.Tuples...)
		}
	}
	return out, nil
}

// probeTargets resolves an IndexProbe's key value and target fragment
// set (an equality on the fragmentation key pins a single fragment)
// and S-locks the fragments. Shared by the materialized and streaming
// executors so routing and locking can never skew between them.
func (e *Engine) probeTargets(ctx *execCtx, pr *plan.IndexProbe) (*table, value.Value, []int, error) {
	kc, ok := pr.Key.(*expr.Const)
	if !ok {
		return nil, value.Null, nil, fmt.Errorf("core: index probe key %s not bound", pr.Key)
	}
	t, err := e.lookupTable(pr.Table)
	if err != nil {
		return nil, value.Null, nil, err
	}
	var frags []int
	sc := t.def.Scheme
	if (sc.Strategy == fragment.Hash || sc.Strategy == fragment.Range) && sc.Column == pr.Col {
		frags = sc.FragmentsForEq(kc.V)
	}
	if frags == nil {
		frags = make([]int, len(t.frags))
		for i := range frags {
			frags[i] = i
		}
	}
	if err := e.lockFragments(ctx, t, frags); err != nil {
		return nil, value.Null, nil, err
	}
	return t, kc.V, frags, nil
}

// probeFragment probes one fragment's hash index, charging the
// simulated network for the request and the reply.
func (e *Engine) probeFragment(ctx *execCtx, f *fragRef, pr *plan.IndexProbe, key value.Value) (*value.Relation, error) {
	if f.pe != ctx.s.pe {
		e.m.Send(ctx.s.pe, f.pe, 64) // the probe request
	}
	rel, err := f.ofm.ProbeEq(pr.Col, key, pr.Rest)
	if err != nil {
		return nil, err
	}
	if f.pe != ctx.s.pe {
		e.m.Send(f.pe, ctx.s.pe, rel.Size()) // only the result travels
	}
	return rel, nil
}

// parallelScan issues scan calls to fragment processes as one batched
// fan-out (deterministic virtual timing) and returns the per-fragment
// results in fragment order.
func (e *Engine) parallelScan(ctx *execCtx, t *table, frags []int, pred expr.Expr) ([]*value.Relation, error) {
	specs := make([]pool.CallSpec, len(frags))
	for i, fi := range frags {
		specs[i] = pool.CallSpec{To: t.frags[fi].proc, Kind: "scan", Body: scanReq{pred: pred}, Bytes: 128}
	}
	results, errs := e.rt.CallAll(ctx.s.pe, specs)
	out := make([]*value.Relation, len(frags))
	for i := range frags {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[i] = results[i].(*value.Relation)
	}
	return out, nil
}

// execSelect filters at the coordinator (predicates that survived
// pushdown: cross-table conditions, HAVING).
func (e *Engine) execSelect(ctx *execCtx, s *plan.Select) (*value.Relation, error) {
	rel, err := e.exec(ctx, s.Child)
	if err != nil {
		return nil, err
	}
	if e.compiled {
		pred, err := expr.CompilePredicate(expr.Clone(s.Pred), rel.Schema)
		if err != nil {
			return nil, err
		}
		out, st, err := algebra.Select(rel, pred)
		if err != nil {
			return nil, err
		}
		e.m.PE(ctx.s.pe).Advance(e.m.Cost().ScanCost(st.TuplesRead, true))
		return out, nil
	}
	bound := expr.Clone(s.Pred)
	if _, err := expr.Bind(bound, rel.Schema); err != nil {
		return nil, err
	}
	out, st, err := algebra.SelectInterpreted(rel, bound)
	if err != nil {
		return nil, err
	}
	e.m.PE(ctx.s.pe).Advance(e.m.Cost().ScanCost(st.TuplesRead, false))
	return out, nil
}

func (e *Engine) execProject(ctx *execCtx, p *plan.Project) (*value.Relation, error) {
	rel, err := e.exec(ctx, p.Child)
	if err != nil {
		return nil, err
	}
	exprs := make([]expr.Expr, len(p.Exprs))
	for i, ex := range p.Exprs {
		exprs[i] = expr.Clone(ex)
	}
	proj, err := expr.CompileProjector(exprs, p.Names, rel.Schema)
	if err != nil {
		return nil, err
	}
	out, st, err := algebra.ProjectExprs(rel, proj)
	if err != nil {
		return nil, err
	}
	out.Schema = p.Out
	e.m.PE(ctx.s.pe).Advance(e.m.Cost().BuildCost(st.TuplesEmitted))
	return out, nil
}

// execJoin dispatches on the optimizer's chosen method.
func (e *Engine) execJoin(ctx *execCtx, j *plan.Join) (*value.Relation, error) {
	method := j.Method
	// Only scan-over-table children can run distributed.
	ls, lok := j.Left.(*plan.Scan)
	rs, rok := j.Right.(*plan.Scan)
	if method == plan.JoinColocated || method == plan.JoinRepartition {
		if !lok || !rok {
			method = plan.JoinCentral
		}
	}
	if method == plan.JoinBroadcast && !lok && !rok {
		method = plan.JoinCentral
	}
	var out *value.Relation
	var err error
	switch method {
	case plan.JoinColocated:
		out, err = e.execColocatedJoin(ctx, j, ls, rs)
	case plan.JoinRepartition:
		out, err = e.execRepartitionJoin(ctx, j, ls, rs)
	case plan.JoinBroadcast:
		out, err = e.execBroadcastJoin(ctx, j, ls, rs)
	default:
		out, err = e.execCentralJoin(ctx, j)
	}
	if err != nil {
		return nil, err
	}
	if j.Swapped {
		// The sides were exchanged for a smaller build table; put the
		// columns back in the order Out (and bound parents) expect.
		lw := j.Left.Schema().Len()
		for i, t := range out.Tuples {
			restored := make(value.Tuple, 0, len(t))
			restored = append(restored, t[lw:]...)
			restored = append(restored, t[:lw]...)
			out.Tuples[i] = restored
		}
	}
	out.Schema = j.Out
	if j.Residual != nil {
		pred, err := expr.CompilePredicate(expr.Clone(j.Residual), out.Schema)
		if err != nil {
			return nil, err
		}
		filtered, st, err := algebra.Select(out, pred)
		if err != nil {
			return nil, err
		}
		e.m.PE(ctx.s.pe).Advance(e.m.Cost().ScanCost(st.TuplesRead, true))
		out = filtered
		out.Schema = j.Out
	}
	return out, nil
}

// execCentralJoin collects both inputs at the coordinator and hash-joins
// there — the no-parallelism baseline.
func (e *Engine) execCentralJoin(ctx *execCtx, j *plan.Join) (*value.Relation, error) {
	l, err := e.exec(ctx, j.Left)
	if err != nil {
		return nil, err
	}
	r, err := e.exec(ctx, j.Right)
	if err != nil {
		return nil, err
	}
	out, st, err := algebra.HashJoin(l, r, j.LeftKeys, j.RightKeys)
	if err != nil {
		return nil, err
	}
	cost := e.m.Cost()
	e.m.PE(ctx.s.pe).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
	return out, nil
}

// execColocatedJoin joins fragment pairs in place: both tables are
// hash-fragmented identically on the join key, so matching tuples are
// guaranteed to live on corresponding fragments. Only results travel.
func (e *Engine) execColocatedJoin(ctx *execCtx, j *plan.Join, ls, rs *plan.Scan) (*value.Relation, error) {
	lt, err := e.lookupTable(ls.Table)
	if err != nil {
		return nil, err
	}
	rt, err := e.lookupTable(rs.Table)
	if err != nil {
		return nil, err
	}
	if lt.def.Scheme.N != rt.def.Scheme.N {
		return nil, fmt.Errorf("core: colocated join over mismatched fragment counts")
	}
	all := make([]int, lt.def.Scheme.N)
	for i := range all {
		all[i] = i
	}
	if err := e.lockFragments(ctx, lt, all); err != nil {
		return nil, err
	}
	if err := e.lockFragments(ctx, rt, all); err != nil {
		return nil, err
	}

	results := make([]*value.Relation, lt.def.Scheme.N)
	errs := make([]error, lt.def.Scheme.N)
	var wg sync.WaitGroup
	for i := 0; i < lt.def.Scheme.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lf, rf := lt.frags[i], rt.frags[i]
			// Fragment-local work: direct scans charge the fragment PEs,
			// the join charges the left fragment's PE, and only the
			// result ships to the coordinator.
			lrel, err := lf.ofm.Scan(ls.Pred, nil)
			if err != nil {
				errs[i] = err
				return
			}
			rrel, err := rf.ofm.Scan(rs.Pred, nil)
			if err != nil {
				errs[i] = err
				return
			}
			if lf.pe != rf.pe {
				// Mismatched placement: ship the right fragment over.
				e.m.Send(rf.pe, lf.pe, rrel.Size())
			}
			out, st, err := algebra.HashJoin(lrel, rrel, j.LeftKeys, j.RightKeys)
			if err != nil {
				errs[i] = err
				return
			}
			cost := e.m.Cost()
			e.m.PE(lf.pe).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
			e.m.Send(lf.pe, ctx.s.pe, out.Size())
			results[i] = out
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := value.NewRelation(j.Out)
	for _, r := range results {
		merged.Tuples = append(merged.Tuples, r.Tuples...)
	}
	return merged, nil
}

// execBroadcastJoin ships the small input to every fragment of the big
// (scanned) input and joins in place: only the small relation and the
// join results travel. The classic small-dimension-table strategy.
func (e *Engine) execBroadcastJoin(ctx *execCtx, j *plan.Join, ls, rs *plan.Scan) (*value.Relation, error) {
	// Decide which side is the fragmented big scan.
	bigLeft := false
	var big *plan.Scan
	var small plan.Node
	if ls != nil {
		if t, err := e.lookupTable(ls.Table); err == nil && len(t.frags) > 1 {
			big, small, bigLeft = ls, j.Right, true
		}
	}
	if big == nil && rs != nil {
		if t, err := e.lookupTable(rs.Table); err == nil && len(t.frags) > 1 {
			big, small = rs, j.Left
		}
	}
	if big == nil {
		return e.execCentralJoin(ctx, j)
	}
	smallRel, err := e.exec(ctx, small)
	if err != nil {
		return nil, err
	}
	// Hash the broadcast side once at the coordinator; every fragment
	// probes the same table instead of re-hashing the build input.
	smallKeys, bigKeys := j.LeftKeys, j.RightKeys
	if bigLeft {
		smallKeys, bigKeys = j.RightKeys, j.LeftKeys
	}
	ht, bst, err := algebra.BuildHashTable(smallRel, smallKeys)
	if err != nil {
		return nil, err
	}
	e.m.PE(ctx.s.pe).Advance(e.m.Cost().HashCost(bst.Hashes))
	bt, err := e.lookupTable(big.Table)
	if err != nil {
		return nil, err
	}
	all := make([]int, len(bt.frags))
	for i := range all {
		all[i] = i
	}
	if err := e.lockFragments(ctx, bt, all); err != nil {
		return nil, err
	}
	// Stamp the broadcast sends sequentially (deterministic timing).
	smallBytes := smallRel.Size()
	for _, f := range bt.frags {
		if f.pe != ctx.s.pe {
			e.m.Send(ctx.s.pe, f.pe, smallBytes)
		}
	}
	results := make([]*value.Relation, len(bt.frags))
	errs := make([]error, len(bt.frags))
	var wg sync.WaitGroup
	for i, f := range bt.frags {
		wg.Add(1)
		go func(i int, f *fragRef) {
			defer wg.Done()
			bigRel, err := f.ofm.Scan(big.Pred, nil)
			if err != nil {
				errs[i] = err
				return
			}
			out, st, err := ht.ProbeJoin(bigRel, bigKeys, bigLeft)
			if err != nil {
				errs[i] = err
				return
			}
			cost := e.m.Cost()
			e.m.PE(f.pe).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
			e.m.Send(f.pe, ctx.s.pe, out.Size())
			results[i] = out
		}(i, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := value.NewRelation(j.Out)
	for _, r := range results {
		merged.Tuples = append(merged.Tuples, r.Tuples...)
	}
	return merged, nil
}

// execRepartitionJoin hash-partitions both inputs on the join keys
// across the left table's fragment PEs, joins each bucket at its PE in
// parallel, and ships only results to the coordinator — the classic
// distributed hash join.
func (e *Engine) execRepartitionJoin(ctx *execCtx, j *plan.Join, ls, rs *plan.Scan) (*value.Relation, error) {
	lt, err := e.lookupTable(ls.Table)
	if err != nil {
		return nil, err
	}
	rt, err := e.lookupTable(rs.Table)
	if err != nil {
		return nil, err
	}
	lAll := make([]int, lt.def.Scheme.N)
	for i := range lAll {
		lAll[i] = i
	}
	rAll := make([]int, rt.def.Scheme.N)
	for i := range rAll {
		rAll[i] = i
	}
	if err := e.lockFragments(ctx, lt, lAll); err != nil {
		return nil, err
	}
	if err := e.lockFragments(ctx, rt, rAll); err != nil {
		return nil, err
	}

	// Bucket targets: the left table's fragment PEs.
	buckets := lt.def.Scheme.N
	targetPE := make([]int, buckets)
	for i := range targetPE {
		targetPE[i] = lt.frags[i].pe
	}

	type sideResult struct {
		parts [][]value.Tuple // [bucket][]tuples
		err   error
	}
	partition := func(t *table, pred expr.Expr, keys []int) sideResult {
		parts := make([][]value.Tuple, buckets)
		var mu sync.Mutex
		var wg sync.WaitGroup
		errs := make([]error, len(t.frags))
		for fi, f := range t.frags {
			wg.Add(1)
			go func(fi int, f *fragRef) {
				defer wg.Done()
				rel, err := f.ofm.Scan(pred, nil)
				if err != nil {
					errs[fi] = err
					return
				}
				local := fragment.PartitionByHash(rel.Tuples, keys, buckets)
				// Ship each bucket to its target PE.
				for b, tuples := range local {
					if len(tuples) == 0 {
						continue
					}
					if f.pe != targetPE[b] {
						e.m.Send(f.pe, targetPE[b], relBytes(tuples))
					}
					mu.Lock()
					parts[b] = append(parts[b], tuples...)
					mu.Unlock()
				}
			}(fi, f)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return sideResult{err: err}
			}
		}
		return sideResult{parts: parts}
	}

	var lres, rres sideResult
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); lres = partition(lt, ls.Pred, j.LeftKeys) }()
	go func() { defer wg.Done(); rres = partition(rt, rs.Pred, j.RightKeys) }()
	wg.Wait()
	if lres.err != nil {
		return nil, lres.err
	}
	if rres.err != nil {
		return nil, rres.err
	}

	// Join each bucket at its PE.
	results := make([]*value.Relation, buckets)
	errs := make([]error, buckets)
	var jwg sync.WaitGroup
	for b := 0; b < buckets; b++ {
		jwg.Add(1)
		go func(b int) {
			defer jwg.Done()
			l := value.NewRelation(ls.Out)
			l.Tuples = lres.parts[b]
			r := value.NewRelation(rs.Out)
			r.Tuples = rres.parts[b]
			out, st, err := algebra.HashJoin(l, r, j.LeftKeys, j.RightKeys)
			if err != nil {
				errs[b] = err
				return
			}
			cost := e.m.Cost()
			e.m.PE(targetPE[b]).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
			e.m.Send(targetPE[b], ctx.s.pe, out.Size())
			results[b] = out
		}(b)
	}
	jwg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := value.NewRelation(j.Out)
	for _, r := range results {
		merged.Tuples = append(merged.Tuples, r.Tuples...)
	}
	return merged, nil
}

// execAggregate runs two-phase distributed aggregation when the
// optimizer marked pushdown (per-fragment partials, coordinator merge),
// else aggregates the child at the coordinator.
func (e *Engine) execAggregate(ctx *execCtx, a *plan.Aggregate) (*value.Relation, error) {
	if a.Pushdown {
		if sc, ok := a.Child.(*plan.Scan); ok {
			return e.execPushdownAggregate(ctx, a, sc)
		}
	}
	rel, err := e.exec(ctx, a.Child)
	if err != nil {
		return nil, err
	}
	out, st, err := algebra.Aggregate(rel, a.GroupBy, a.Specs)
	if err != nil {
		return nil, err
	}
	cost := e.m.Cost()
	e.m.PE(ctx.s.pe).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
	out.Schema = a.Out
	return out, nil
}

func (e *Engine) execPushdownAggregate(ctx *execCtx, a *plan.Aggregate, sc *plan.Scan) (*value.Relation, error) {
	t, err := e.lookupTable(sc.Table)
	if err != nil {
		return nil, err
	}
	frags := e.pruneFragments(t, sc.Pred)
	if err := e.lockFragments(ctx, t, frags); err != nil {
		return nil, err
	}
	partialSpecs := algebra.PartialSpecs(a.Specs)
	specs := make([]pool.CallSpec, len(frags))
	for i, fi := range frags {
		specs[i] = pool.CallSpec{To: t.frags[fi].proc, Kind: "aggregate",
			Body: aggReq{pred: sc.Pred, groupBy: a.GroupBy, specs: partialSpecs}, Bytes: 192}
	}
	results, errs := e.rt.CallAll(ctx.s.pe, specs)
	partials := make([]*value.Relation, len(frags))
	for i := range frags {
		if errs[i] != nil {
			return nil, errs[i]
		}
		partials[i] = results[i].(*value.Relation)
	}
	out, st, err := algebra.MergeAggregates(partials, len(a.GroupBy), a.Specs)
	if err != nil {
		return nil, err
	}
	cost := e.m.Cost()
	e.m.PE(ctx.s.pe).Advance(cost.HashCost(st.TuplesRead) + cost.BuildCost(st.TuplesEmitted))
	out.Schema = a.Out
	return out, nil
}
