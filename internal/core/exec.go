package core

import (
	"fmt"
	"sync"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/fragment"
	"repro/internal/ofm"
	"repro/internal/plan"
	"repro/internal/pool"
	"repro/internal/txn"
	"repro/internal/value"
)

// execCtx carries per-query state: the session (locks, coordinator PE),
// the read view, and the common-subexpression cache the optimizer's CSE
// rule feeds. Under MVCC tx is nil for reads — the view alone selects
// the visible versions and no locks are taken.
type execCtx struct {
	s      *Session
	tx     *txn.Txn
	view   ofm.View
	shared map[string]*value.Relation
	mu     sync.Mutex
	// mem charges materialized intermediates (scans, join outputs,
	// aggregates, sorts) against the tenant's working-memory budget;
	// nil when the session has no budget.
	mem *memAcct
}

func (ctx *execCtx) cacheGet(key string) (*value.Relation, bool) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	r, ok := ctx.shared[key]
	return r, ok
}

func (ctx *execCtx) cachePut(key string, r *value.Relation) {
	ctx.mu.Lock()
	ctx.shared[key] = r
	ctx.mu.Unlock()
}

// execPlan runs an optimized plan under the given transaction and view.
func (e *Engine) execPlan(s *Session, tx *txn.Txn, view ofm.View, root plan.Node) (*value.Relation, error) {
	ctx := &execCtx{s: s, tx: tx, view: view, shared: map[string]*value.Relation{}}
	if s.memBudget > 0 {
		ctx.mem = &memAcct{limit: s.memBudget}
	}
	rel, err := e.exec(ctx, root)
	if err != nil {
		return nil, err
	}
	// Partitioned paths charge mid-gather but cannot error there; a
	// breach anywhere aborts the statement here at the latest.
	if err := ctx.mem.breach(); err != nil {
		return nil, err
	}
	return rel, nil
}

func (e *Engine) exec(ctx *execCtx, n plan.Node) (*value.Relation, error) {
	// Columnar batch execution intercepts eligible subtrees (see
	// execvec.go); everything it declines runs tuple-at-a-time below.
	if rel, handled, err := e.execVec(ctx, n); handled {
		return rel, err
	}
	switch t := n.(type) {
	case *plan.Scan:
		return e.execScan(ctx, t)
	case *plan.IndexProbe:
		return e.execIndexProbe(ctx, t)
	case *plan.Select:
		return e.execSelect(ctx, t)
	case *plan.Project:
		return e.execProject(ctx, t)
	case *plan.Join:
		return e.execJoin(ctx, t)
	case *plan.Exchange:
		// An exchange at the materialization root: run the partitioned
		// pipeline below it and gather at the coordinator.
		pr, err := e.execPart(ctx, t)
		if err != nil {
			return nil, err
		}
		return e.gatherPart(ctx, pr, t.Schema()), nil
	case *plan.Aggregate:
		return e.execAggregate(ctx, t)
	case *plan.Sort:
		if t.Parallel {
			return e.execPartSort(ctx, t)
		}
		rel, err := e.exec(ctx, t.Child)
		if err != nil {
			return nil, err
		}
		out, st, err := algebra.Sort(rel, t.Cols, t.Desc)
		if err != nil {
			return nil, err
		}
		if err := ctx.chargeRel(out); err != nil {
			return nil, err
		}
		e.m.PE(ctx.s.pe).Advance(e.m.Cost().CompareCost(st.Compares))
		return out, nil
	case *plan.Distinct:
		if t.Parallel {
			return e.execPartDistinct(ctx, t)
		}
		rel, err := e.exec(ctx, t.Child)
		if err != nil {
			return nil, err
		}
		out, st := algebra.Distinct(rel)
		if err := ctx.chargeRel(out); err != nil {
			return nil, err
		}
		e.m.PE(ctx.s.pe).Advance(e.m.Cost().HashCost(st.Hashes))
		return out, nil
	case *plan.Limit:
		rel, err := e.exec(ctx, t.Child)
		if err != nil {
			return nil, err
		}
		out, _ := algebra.Limit(rel, t.N)
		return out, nil
	}
	return nil, fmt.Errorf("core: unknown plan node %T", n)
}

// lockFragments S-locks the listed fragments of a table for the query.
// Under MVCC it is a no-op: snapshot reads are resolved purely by the
// view's timestamp, so readers never touch the lock manager and never
// block (or are blocked by) writers.
func (e *Engine) lockFragments(ctx *execCtx, t *table, frags []int) error {
	if e.mvcc {
		return nil
	}
	for _, fi := range frags {
		if err := ctx.tx.Lock(t.frags[fi].ofm.Name(), txn.Shared); err != nil {
			return err
		}
	}
	return nil
}

// execScan runs a (possibly filtered) parallel scan over a table's
// fragments, pruning fragments by the predicate where the fragmentation
// scheme allows. Shared scans hit the CSE cache.
func (e *Engine) execScan(ctx *execCtx, sc *plan.Scan) (*value.Relation, error) {
	key := ""
	if sc.Shared {
		key = sc.Table + "|"
		if sc.Pred != nil {
			key += sc.Pred.String()
		}
		if rel, ok := ctx.cacheGet(key); ok {
			out := value.NewRelation(sc.Out)
			out.Tuples = rel.Tuples
			return out, nil
		}
	}
	t, err := e.lookupTable(sc.Table)
	if err != nil {
		return nil, err
	}
	frags := e.pruneFragments(t, sc.Pred)
	if err := e.lockFragments(ctx, t, frags); err != nil {
		return nil, err
	}
	parts, err := e.parallelScan(ctx, t, frags, sc.Pred)
	if err != nil {
		return nil, err
	}
	out := value.NewRelation(sc.Out)
	for _, p := range parts {
		out.Tuples = append(out.Tuples, p.Tuples...)
	}
	if err := ctx.chargeRel(out); err != nil {
		return nil, err
	}
	if sc.Shared {
		ctx.cachePut(key, out)
	}
	return out, nil
}

// execIndexProbe runs the point-query fast path: resolve the key, route
// straight to the fragment(s) the fragmentation scheme allows, and let
// each OFM answer with a direct hash-index lookup — no scan, no
// predicate compilation, no full-relation materialization. Like the
// colocated join, the probe calls the OFM directly under the fragment's
// shared lock and charges the simulated network for the request and
// reply, skipping the process-message round trip.
func (e *Engine) execIndexProbe(ctx *execCtx, pr *plan.IndexProbe) (*value.Relation, error) {
	t, key, frags, err := e.probeTargets(ctx, pr)
	if err != nil {
		return nil, err
	}
	out := value.NewRelation(pr.Out)
	for _, fi := range frags {
		rel, err := e.probeFragment(ctx, t.frags[fi], pr, key)
		if err != nil {
			return nil, err
		}
		if out.Tuples == nil {
			out.Tuples = rel.Tuples
		} else {
			out.Tuples = append(out.Tuples, rel.Tuples...)
		}
	}
	return out, nil
}

// probeTargets resolves an IndexProbe's key value and target fragment
// set (an equality on the fragmentation key pins a single fragment)
// and S-locks the fragments. Shared by the materialized and streaming
// executors so routing and locking can never skew between them.
func (e *Engine) probeTargets(ctx *execCtx, pr *plan.IndexProbe) (*table, value.Value, []int, error) {
	kc, ok := pr.Key.(*expr.Const)
	if !ok {
		return nil, value.Null, nil, fmt.Errorf("core: index probe key %s not bound", pr.Key)
	}
	t, err := e.lookupTable(pr.Table)
	if err != nil {
		return nil, value.Null, nil, err
	}
	var frags []int
	sc := t.def.Scheme
	if (sc.Strategy == fragment.Hash || sc.Strategy == fragment.Range) && sc.Column == pr.Col {
		frags = sc.FragmentsForEq(kc.V)
	}
	if frags == nil {
		frags = make([]int, len(t.frags))
		for i := range frags {
			frags[i] = i
		}
	}
	if err := e.lockFragments(ctx, t, frags); err != nil {
		return nil, value.Null, nil, err
	}
	return t, kc.V, frags, nil
}

// probeFragment probes one fragment's hash index, charging the
// simulated network for the request and the reply.
func (e *Engine) probeFragment(ctx *execCtx, f *fragRef, pr *plan.IndexProbe, key value.Value) (*value.Relation, error) {
	if f.pe != ctx.s.pe {
		e.m.Send(ctx.s.pe, f.pe, 64) // the probe request
	}
	rel, err := f.ofm.ProbeEq(ctx.view, pr.Col, key, pr.Rest)
	if err != nil {
		return nil, err
	}
	if f.pe != ctx.s.pe {
		e.m.Send(f.pe, ctx.s.pe, rel.Size()) // only the result travels
	}
	return rel, nil
}

// parallelScan issues scan calls to fragment processes as one batched
// fan-out (deterministic virtual timing) and returns the per-fragment
// results in fragment order.
func (e *Engine) parallelScan(ctx *execCtx, t *table, frags []int, pred expr.Expr) ([]*value.Relation, error) {
	specs := make([]pool.CallSpec, len(frags))
	for i, fi := range frags {
		specs[i] = pool.CallSpec{To: t.frags[fi].proc, Kind: "scan", Body: scanReq{view: ctx.view, pred: pred}, Bytes: 128}
	}
	results, errs := e.rt.CallAll(ctx.s.pe, specs)
	out := make([]*value.Relation, len(frags))
	for i := range frags {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[i] = results[i].(*value.Relation)
	}
	return out, nil
}

// execSelect filters at the coordinator (predicates that survived
// pushdown: cross-table conditions, HAVING).
func (e *Engine) execSelect(ctx *execCtx, s *plan.Select) (*value.Relation, error) {
	rel, err := e.exec(ctx, s.Child)
	if err != nil {
		return nil, err
	}
	if e.compiled {
		pred, err := expr.CompilePredicate(expr.Clone(s.Pred), rel.Schema)
		if err != nil {
			return nil, err
		}
		out, st, err := algebra.Select(rel, pred)
		if err != nil {
			return nil, err
		}
		e.m.PE(ctx.s.pe).Advance(e.m.Cost().ScanCost(st.TuplesRead, true))
		return out, nil
	}
	bound := expr.Clone(s.Pred)
	if _, err := expr.Bind(bound, rel.Schema); err != nil {
		return nil, err
	}
	out, st, err := algebra.SelectInterpreted(rel, bound)
	if err != nil {
		return nil, err
	}
	e.m.PE(ctx.s.pe).Advance(e.m.Cost().ScanCost(st.TuplesRead, false))
	return out, nil
}

func (e *Engine) execProject(ctx *execCtx, p *plan.Project) (*value.Relation, error) {
	rel, err := e.exec(ctx, p.Child)
	if err != nil {
		return nil, err
	}
	exprs := make([]expr.Expr, len(p.Exprs))
	for i, ex := range p.Exprs {
		exprs[i] = expr.Clone(ex)
	}
	proj, err := expr.CompileProjector(exprs, p.Names, rel.Schema)
	if err != nil {
		return nil, err
	}
	out, st, err := algebra.ProjectExprs(rel, proj)
	if err != nil {
		return nil, err
	}
	out.Schema = p.Out
	e.m.PE(ctx.s.pe).Advance(e.m.Cost().BuildCost(st.TuplesEmitted))
	return out, nil
}

// execJoin dispatches on the optimizer's chosen method. Distributed
// methods run on the partitioned dataflow path — over base-table scans
// and over arbitrary intermediates alike — and gather only the finished
// join output at the coordinator.
func (e *Engine) execJoin(ctx *execCtx, j *plan.Join) (*value.Relation, error) {
	switch j.Method {
	case plan.JoinColocated, plan.JoinRepartition, plan.JoinBroadcast:
		pr, err := e.execPartJoin(ctx, j)
		if err != nil {
			return nil, err
		}
		return e.gatherPart(ctx, pr, j.Out), nil
	}
	return e.execCentralJoin(ctx, j)
}

// execCentralJoin collects both inputs at the coordinator and hash-joins
// there — the no-parallelism baseline.
func (e *Engine) execCentralJoin(ctx *execCtx, j *plan.Join) (*value.Relation, error) {
	l, err := e.exec(ctx, j.Left)
	if err != nil {
		return nil, err
	}
	r, err := e.exec(ctx, j.Right)
	if err != nil {
		return nil, err
	}
	return e.joinRelsCentral(ctx, j, l, r)
}

// joinRelsCentral hash-joins two materialized inputs at the
// coordinator and finishes the output (swap restore, residual).
func (e *Engine) joinRelsCentral(ctx *execCtx, j *plan.Join, l, r *value.Relation) (*value.Relation, error) {
	out, st, err := algebra.HashJoin(l, r, j.LeftKeys, j.RightKeys)
	if err != nil {
		return nil, err
	}
	if err := ctx.chargeRel(out); err != nil {
		return nil, err
	}
	cost := e.m.Cost()
	e.m.PE(ctx.s.pe).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
	return e.finishJoinPart(j, out, ctx.s.pe)
}

// finishJoinPart finishes one join output (a partition or the whole
// central result) on PE pe: restores the pre-swap column order, stamps
// the output schema, and applies the residual predicate.
func (e *Engine) finishJoinPart(j *plan.Join, out *value.Relation, pe int) (*value.Relation, error) {
	if j.Swapped {
		restoreSwapped(out.Tuples, j.Left.Schema().Len())
	}
	out.Schema = j.Out
	if j.Residual != nil {
		pred, err := expr.CompilePredicate(expr.Clone(j.Residual), j.Out)
		if err != nil {
			return nil, err
		}
		filtered, st, err := algebra.Select(out, pred)
		if err != nil {
			return nil, err
		}
		e.m.PE(pe).Advance(e.m.Cost().ScanCost(st.TuplesRead, true))
		filtered.Schema = j.Out
		out = filtered
	}
	return out, nil
}

// restoreSwapped rotates each tuple left by lw in place, undoing the
// optimizer's build-side swap: tuple t[:lw] ++ t[lw:] becomes
// t[lw:] ++ t[:lw]. One scratch buffer is reused across the whole
// relation instead of allocating a fresh tuple per row. Safe only
// because join outputs are always freshly concatenated tuples — never
// aliases of fragment storage or the CSE scan cache.
func restoreSwapped(tuples []value.Tuple, lw int) {
	if lw == 0 || len(tuples) == 0 || lw >= len(tuples[0]) {
		return
	}
	scratch := make(value.Tuple, lw)
	for _, t := range tuples {
		copy(scratch, t[:lw])
		copy(t, t[lw:])
		copy(t[len(t)-lw:], scratch)
	}
}

// execAggregate runs two-phase distributed aggregation when the
// optimizer marked pushdown: per-fragment partials inside the OFMs for
// bare table scans, partial-per-partition on the dataflow path for any
// other partitioned child (joins of joins included), with a coordinator
// merge either way. Unmarked aggregates run at the coordinator.
func (e *Engine) execAggregate(ctx *execCtx, a *plan.Aggregate) (*value.Relation, error) {
	if a.Pushdown {
		if sc, ok := a.Child.(*plan.Scan); ok {
			return e.execPushdownAggregate(ctx, a, sc)
		}
		return e.execPartAggregate(ctx, a)
	}
	rel, err := e.exec(ctx, a.Child)
	if err != nil {
		return nil, err
	}
	out, st, err := algebra.Aggregate(rel, a.GroupBy, a.Specs)
	if err != nil {
		return nil, err
	}
	if err := ctx.chargeRel(out); err != nil {
		return nil, err
	}
	cost := e.m.Cost()
	e.m.PE(ctx.s.pe).Advance(cost.HashCost(st.Hashes) + cost.BuildCost(st.TuplesEmitted))
	out.Schema = a.Out
	return out, nil
}

func (e *Engine) execPushdownAggregate(ctx *execCtx, a *plan.Aggregate, sc *plan.Scan) (*value.Relation, error) {
	t, err := e.lookupTable(sc.Table)
	if err != nil {
		return nil, err
	}
	frags := e.pruneFragments(t, sc.Pred)
	if err := e.lockFragments(ctx, t, frags); err != nil {
		return nil, err
	}
	partialSpecs := algebra.PartialSpecs(a.Specs)
	specs := make([]pool.CallSpec, len(frags))
	for i, fi := range frags {
		specs[i] = pool.CallSpec{To: t.frags[fi].proc, Kind: "aggregate",
			Body: aggReq{view: ctx.view, pred: sc.Pred, groupBy: a.GroupBy, specs: partialSpecs}, Bytes: 192}
	}
	results, errs := e.rt.CallAll(ctx.s.pe, specs)
	partials := make([]*value.Relation, len(frags))
	for i := range frags {
		if errs[i] != nil {
			return nil, errs[i]
		}
		partials[i] = results[i].(*value.Relation)
	}
	out, st, err := algebra.MergeAggregates(partials, len(a.GroupBy), a.Specs)
	if err != nil {
		return nil, err
	}
	if err := ctx.chargeRel(out); err != nil {
		return nil, err
	}
	cost := e.m.Cost()
	e.m.PE(ctx.s.pe).Advance(cost.HashCost(st.TuplesRead) + cost.BuildCost(st.TuplesEmitted))
	out.Schema = a.Out
	return out, nil
}
