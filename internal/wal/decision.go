package wal

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/machine"
	"repro/internal/txn"
)

// DecisionLog is the 2PC coordinator's durable decision record. The
// coordinator forces one entry here after a unanimous yes-vote and
// before any participant is told to commit — the classic write that
// makes atomic commit crash-consistent. Only commit decisions are
// logged: by the presumed-abort convention, a prepared transaction with
// no entry here was never committed, so recovery may (and does) abort
// it without any coordinator round-trip.
//
// Entries are fixed-size, so a torn tail is at most one partial entry;
// Open drops it — an incompletely-logged decision is no decision, which
// presumed abort turns into the safe outcome.
type DecisionLog struct {
	store *machine.StableStore
	name  string

	mu        sync.Mutex
	decisions map[txn.ID]uint64 // tx -> commit timestamp
}

// decisionEntrySize is the fixed on-disk entry: [tag:1][txn:8][ts:8].
const decisionEntrySize = 17

const decisionTag = 0xD1

// OpenDecisionLog attaches a decision log to a stable-store segment,
// replaying surviving entries (and ignoring a torn trailing partial).
func OpenDecisionLog(store *machine.StableStore, name string) (*DecisionLog, error) {
	if store == nil {
		return nil, fmt.Errorf("wal: nil stable store")
	}
	if name == "" {
		return nil, fmt.Errorf("wal: empty decision log name")
	}
	d := &DecisionLog{store: store, name: name, decisions: map[txn.ID]uint64{}}
	data := store.ReadAll(name)
	for off := 0; off+decisionEntrySize <= len(data); off += decisionEntrySize {
		e := data[off : off+decisionEntrySize]
		if e[0] != decisionTag {
			break // garbage: keep the valid prefix only
		}
		d.decisions[txn.ID(binary.BigEndian.Uint64(e[1:9]))] = binary.BigEndian.Uint64(e[9:17])
	}
	return d, nil
}

// RecordCommit durably logs the commit decision for tx before phase 2
// may start. The force rides the stable store's group-commit path, so a
// burst of concurrent commits shares one disk sync with the commit
// markers landing on the same disk PE. If this returns an error the
// decision was NOT made and the coordinator must abort.
func (d *DecisionLog) RecordCommit(tx txn.ID, ts uint64) error {
	var buf [decisionEntrySize]byte
	buf[0] = decisionTag
	binary.BigEndian.PutUint64(buf[1:9], uint64(tx))
	binary.BigEndian.PutUint64(buf[9:17], ts)
	if _, err := d.store.GroupAppend(d.name, buf[:]); err != nil {
		return err
	}
	d.mu.Lock()
	d.decisions[tx] = ts
	d.mu.Unlock()
	return nil
}

// Decision reports the logged outcome for tx: known=true with the
// commit timestamp when a commit decision was forced, known=false when
// no decision survives (presumed abort). It satisfies wal.Decider and
// txn.DecisionLogger.
func (d *DecisionLog) Decision(tx txn.ID) (ts uint64, commit bool, known bool) {
	d.mu.Lock()
	ts, ok := d.decisions[tx]
	d.mu.Unlock()
	return ts, ok, ok
}

// Len reports how many commit decisions the log holds.
func (d *DecisionLog) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.decisions)
}
