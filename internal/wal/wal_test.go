package wal

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/value"
)

func newLog(t *testing.T) (*machine.Machine, *Log) {
	t.Helper()
	m, err := machine.New(machine.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	store, err := machine.NewStableStore(m.PE(0), machine.DiskModel{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(store, "wal-test")
	if err != nil {
		t.Fatal(err)
	}
	return m, l
}

func tup(vs ...int64) value.Tuple { return value.Ints(vs...) }

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, "x"); err == nil {
		t.Error("nil store should error")
	}
	m, err := machine.New(machine.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	store, err := machine.NewStableStore(m.PE(0), machine.DiskModel{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(store, ""); err == nil {
		t.Error("empty name should error")
	}
}

func TestAppendScanRoundTrip(t *testing.T) {
	_, l := newLog(t)
	recs := []Record{
		{Type: RecInsert, Txn: 1, Tuple: tup(1, 10)},
		{Type: RecDelete, Txn: 1, Tuple: tup(2, 20)},
		{Type: RecPrepare, Txn: 1},
		{Type: RecCommit, Txn: 1},
	}
	if err := l.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 4 {
		t.Errorf("Records = %d", l.Records())
	}
	got, err := l.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("scanned %d records", len(got))
	}
	for i, r := range got {
		if r.Type != recs[i].Type || r.Txn != recs[i].Txn {
			t.Errorf("record %d = %+v, want %+v", i, r, recs[i])
		}
		if (r.Tuple == nil) != (recs[i].Tuple == nil) {
			t.Errorf("record %d payload mismatch", i)
		}
		if r.Tuple != nil && !value.EqualTuples(r.Tuple, recs[i].Tuple) {
			t.Errorf("record %d tuple = %v", i, r.Tuple)
		}
	}
	// Appending nothing is a no-op.
	if err := l.Append(); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 4 {
		t.Error("empty append changed count")
	}
}

func TestAppendChargesDiskTime(t *testing.T) {
	m, l := newLog(t)
	before := m.PE(0).Clock()
	if err := l.Append(Record{Type: RecCommit, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if m.PE(0).Clock() <= before {
		t.Error("log force must charge virtual disk time")
	}
}

func TestRecoverOnlyCommitted(t *testing.T) {
	_, l := newLog(t)
	// Txn 1 commits; txn 2 prepares but never resolves; txn 3 aborts.
	must(t, l.Append(
		Record{Type: RecInsert, Txn: 1, Tuple: tup(1)},
		Record{Type: RecPrepare, Txn: 1},
		Record{Type: RecCommit, Txn: 1},
		Record{Type: RecInsert, Txn: 2, Tuple: tup(2)},
		Record{Type: RecPrepare, Txn: 2},
		Record{Type: RecInsert, Txn: 3, Tuple: tup(3)},
		Record{Type: RecPrepare, Txn: 3},
		Record{Type: RecAbort, Txn: 3},
	))
	res, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Redo) != 1 || res.Redo[0].Tuple[0].Int() != 1 {
		t.Errorf("redo = %+v", res.Redo)
	}
	if len(res.Committed) != 1 || res.Committed[0] != 1 {
		t.Errorf("committed = %v", res.Committed)
	}
	if len(res.InDoubt) != 1 || res.InDoubt[0] != 2 {
		t.Errorf("in doubt = %v", res.InDoubt)
	}
	if len(res.AbortedTxns) != 1 || res.AbortedTxns[0] != 3 {
		t.Errorf("aborted = %v", res.AbortedTxns)
	}
	if res.Snapshot != nil {
		t.Errorf("unexpected snapshot %v", res.Snapshot)
	}
}

func TestCheckpointAndRecover(t *testing.T) {
	_, l := newLog(t)
	// Pre-checkpoint history.
	must(t, l.Append(
		Record{Type: RecInsert, Txn: 1, Tuple: tup(1)},
		Record{Type: RecCommit, Txn: 1},
	))
	snapshot := []value.Tuple{tup(1)}
	if err := l.Checkpoint(snapshot); err != nil {
		t.Fatal(err)
	}
	if l.Bytes() != 0 {
		t.Errorf("log not truncated: %d bytes", l.Bytes())
	}
	// Post-checkpoint commits.
	must(t, l.Append(
		Record{Type: RecInsert, Txn: 2, Tuple: tup(2)},
		Record{Type: RecCommit, Txn: 2},
	))
	res, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshot) != 1 || res.Snapshot[0][0].Int() != 1 {
		t.Errorf("snapshot = %v", res.Snapshot)
	}
	if len(res.Redo) != 1 || res.Redo[0].Tuple[0].Int() != 2 {
		t.Errorf("redo = %+v", res.Redo)
	}
}

func TestRecoverEmptyLog(t *testing.T) {
	_, l := newLog(t)
	res, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != nil || len(res.Redo) != 0 || len(res.Committed) != 0 {
		t.Errorf("empty recovery = %+v", res)
	}
}

func TestUpdateAsDeleteInsert(t *testing.T) {
	_, l := newLog(t)
	// An update of (1,10) to (1,20) logs delete+insert under one txn.
	must(t, l.Append(
		Record{Type: RecDelete, Txn: 5, Tuple: tup(1, 10)},
		Record{Type: RecInsert, Txn: 5, Tuple: tup(1, 20)},
		Record{Type: RecPrepare, Txn: 5},
		Record{Type: RecCommit, Txn: 5},
	))
	res, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Redo) != 2 || res.Redo[0].Type != RecDelete || res.Redo[1].Type != RecInsert {
		t.Errorf("redo = %+v", res.Redo)
	}
}

func TestCorruptTailTruncated(t *testing.T) {
	// A crash can leave garbage where a record should start. Scan keeps
	// the valid prefix (here: none) instead of failing the whole
	// recovery, and Recover truncates the garbage so the log is clean
	// for new appends.
	m, err := machine.New(machine.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	store, err := machine.NewStableStore(m.PE(0), machine.DiskModel{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Append("bad", []byte{99, 0, 0}); err != nil {
		t.Fatal(err)
	}
	l, err := Open(store, "bad")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := l.Scan()
	if err != nil || len(recs) != 0 {
		t.Errorf("Scan = %v, %v; want empty prefix, nil error", recs, err)
	}
	if tb := l.TornBytes(); tb != 3 {
		t.Errorf("TornBytes = %d, want 3", tb)
	}
	res, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.TornBytes != 3 || len(res.Redo) != 0 {
		t.Errorf("recovery = %+v, want 3 torn bytes and no redo", res)
	}
	if store.Size("bad") != 0 {
		t.Errorf("garbage not truncated: %d bytes remain", store.Size("bad"))
	}
	// The healed log accepts and round-trips new appends.
	must(t, l.Append(Record{Type: RecInsert, Txn: 9, Tuple: tup(42)}, Record{Type: RecCommit, Txn: 9}))
	res, err = l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Redo) != 1 || res.Redo[0].Tuple[0].Int() != 42 {
		t.Errorf("post-heal redo = %+v", res.Redo)
	}
}

func TestLogSurvivesReopen(t *testing.T) {
	m, l := newLog(t)
	must(t, l.Append(
		Record{Type: RecInsert, Txn: 1, Tuple: tup(7)},
		Record{Type: RecCommit, Txn: 1},
	))
	// "Crash": the Log object is dropped; a fresh one opens the same
	// segment (stable storage survives).
	store, err := machine.NewStableStore(m.PE(0), machine.DiskModel{})
	if err != nil {
		t.Fatal(err)
	}
	_ = store // different store object would be a different disk; reuse l's
	l2, err := Open(l.store, "wal-test")
	if err != nil {
		t.Fatal(err)
	}
	res, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Redo) != 1 || res.Redo[0].Tuple[0].Int() != 7 {
		t.Errorf("post-crash redo = %+v", res.Redo)
	}
}

func TestRecTypeString(t *testing.T) {
	for rt, want := range map[RecType]string{
		RecInsert: "insert", RecDelete: "delete", RecPrepare: "prepare",
		RecCommit: "commit", RecAbort: "abort", RecType(99): "?",
	} {
		if rt.String() != want {
			t.Errorf("%d.String() = %q, want %q", rt, rt.String(), want)
		}
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
