// Package wal implements write-ahead redo logging and restart recovery
// on the multi-computer's stable storage (paper §3.2: disk-attached PEs
// "implement stable storage and automatic recovery upon system failures.
// This approach leads to a simplification in the design of the database
// management system").
//
// The design exploits that simplification: OFM updates are deferred —
// buffered in the transaction's write set and applied to the main-memory
// store only after commit. The log therefore carries redo records only
// (no undo): at 2PC prepare the participant appends its write set plus a
// prepare marker; the commit marker makes the transaction durable.
// Recovery loads the last checkpoint and replays exactly the
// transactions whose commit marker made it to the log.
package wal

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/txn"
	"repro/internal/value"
)

// Fault points on the logging path: before a log force and before a
// checkpoint swap.
var (
	fpWalAppend     = fault.Register("wal.append.pre-sync")
	fpWalCheckpoint = fault.Register("wal.checkpoint.pre")
)

// RecType tags a log record.
type RecType uint8

// Log record types.
const (
	RecInsert RecType = iota + 1
	RecDelete
	RecPrepare
	RecCommit
	RecAbort
)

func (t RecType) String() string {
	switch t {
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	case RecPrepare:
		return "prepare"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	}
	return "?"
}

// Record is one redo log entry. Updates are logged as delete+insert.
// TS is the commit timestamp: written on commit markers, and stamped by
// Recover onto each committed transaction's redo records so replay can
// rebuild multiversion visibility exactly as it was before the crash.
type Record struct {
	Type  RecType
	Txn   txn.ID
	TS    uint64
	Tuple value.Tuple // payload for insert/delete; nil for markers
}

// appendRecord encodes: [type:1][txn:8][ts:8][hasTuple:1][tuple...].
func appendRecord(buf []byte, r Record) []byte {
	buf = append(buf, byte(r.Type))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Txn))
	buf = binary.BigEndian.AppendUint64(buf, r.TS)
	if r.Tuple == nil {
		buf = append(buf, 0)
		return buf
	}
	buf = append(buf, 1)
	return value.AppendTuple(buf, r.Tuple)
}

func decodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < 18 {
		return Record{}, 0, fmt.Errorf("wal: truncated record header")
	}
	r := Record{
		Type: RecType(buf[0]),
		Txn:  txn.ID(binary.BigEndian.Uint64(buf[1:9])),
		TS:   binary.BigEndian.Uint64(buf[9:17]),
	}
	if r.Type < RecInsert || r.Type > RecAbort {
		return Record{}, 0, fmt.Errorf("wal: bad record type %d", buf[0])
	}
	off := 17
	hasTuple := buf[off]
	off++
	if hasTuple > 1 {
		// Strict on the flag byte: a torn or corrupt tail must fail to
		// decode rather than parse as something re-encoding differently.
		return Record{}, 0, fmt.Errorf("wal: bad tuple flag %d", hasTuple)
	}
	if hasTuple == 0 {
		return r, off, nil
	}
	t, n, err := value.DecodeTuple(buf[off:])
	if err != nil {
		return Record{}, 0, fmt.Errorf("wal: record payload: %w", err)
	}
	r.Tuple = t
	return r, off + n, nil
}

// Log is one OFM's write-ahead log plus checkpoint on a stable store.
type Log struct {
	store *machine.StableStore
	name  string // log segment; checkpoint lives at name+".ckpt"

	mu      sync.Mutex
	records int
	bytes   int64
	gen     uint64 // checkpoint generation: bumps whenever the log is truncated
}

// Open attaches a log to a segment of a stable store. Existing contents
// (from before a crash) are preserved.
func Open(store *machine.StableStore, name string) (*Log, error) {
	if store == nil {
		return nil, fmt.Errorf("wal: nil stable store")
	}
	if name == "" {
		return nil, fmt.Errorf("wal: empty log name")
	}
	l := &Log{store: store, name: name}
	l.bytes = store.Size(name)
	return l, nil
}

// Name returns the log's segment name.
func (l *Log) Name() string { return l.name }

// Append durably appends records as one write (one disk force).
func (l *Log) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	if out := fpWalAppend.Eval(); out != nil {
		return out.Err
	}
	if _, err := l.store.Append(l.name, buf); err != nil {
		return err
	}
	l.mu.Lock()
	l.records += len(recs)
	l.bytes += int64(len(buf))
	l.mu.Unlock()
	return nil
}

// AppendCommit durably appends tx's commit marker through the stable
// store's group-commit path: the disk force is shared with whatever
// other logs on the same disk PE are forcing commit markers at that
// moment (concurrent pipelined DML commits on different fragments land
// on the same stable store). The caller returns only after its marker
// is durable, so commit semantics are unchanged; under concurrency the
// number of disk forces drops from one per commit toward one per burst.
// Different transactions committing on the *same* fragment never
// overlap here (strict 2PL serializes them), which is exactly why the
// batching lives on the shared store rather than the per-fragment log.
func (l *Log) AppendCommit(tx txn.ID, ts uint64) error {
	buf := appendRecord(nil, Record{Type: RecCommit, Txn: tx, TS: ts})
	if _, err := l.store.GroupAppend(l.name, buf); err != nil {
		return err
	}
	l.mu.Lock()
	l.records++
	l.bytes += int64(len(buf))
	l.mu.Unlock()
	return nil
}

// Records returns how many records this Log instance has appended.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Bytes returns the log segment's current size.
func (l *Log) Bytes() int64 {
	return l.store.Size(l.name)
}

// Scan decodes the log segment, tolerating a torn tail: a crash can cut
// an append mid-record, so decoding stops at the first record that does
// not parse and the valid prefix is returned. Scan never fails on log
// contents — a log whose very first record is garbage is simply an
// empty log. (Record encoding is strictly length-prefixed, so a record
// cut at any byte offset fails to decode rather than mis-decoding.)
func (l *Log) Scan() ([]Record, error) {
	recs, _, _ := l.scanPrefix()
	return recs, nil
}

// TornBytes reports how many trailing garbage bytes the log currently
// carries past its last decodable record (zero on a clean log).
func (l *Log) TornBytes() int64 {
	_, valid, total := l.scanPrefix()
	return total - valid
}

// scanPrefix decodes the longest valid record prefix of the segment,
// returning the records, the byte length of that prefix, and the total
// segment length.
func (l *Log) scanPrefix() (recs []Record, valid, total int64) {
	data := l.store.ReadAll(l.name)
	off := 0
	for off < len(data) {
		r, n, err := decodeRecord(data[off:])
		if err != nil {
			break
		}
		recs = append(recs, r)
		off += n
	}
	return recs, int64(off), int64(len(data))
}

// Checkpoint atomically replaces the checkpoint with the given snapshot
// and truncates the log in one stable-storage swap. Transactions
// committed before the checkpoint are folded into the snapshot; the log
// restarts empty. A crash before the swap leaves the old checkpoint and
// the full log — recovery replays as if no checkpoint was attempted.
func (l *Log) Checkpoint(snapshot []value.Tuple) error {
	return l.CheckpointWith(snapshot, nil)
}

// CheckpointWith is Checkpoint plus carried-forward records: the fresh
// log starts with carry instead of empty, installed in the same atomic
// swap as the snapshot. The caller passes the redo records (sealed by
// their prepare markers) of transactions that sit prepared but
// undecided at checkpoint time — truncating those would lose a
// transaction the coordinator's decision log may yet declare committed,
// and re-appending them after a separate truncation would leave a crash
// window with the same hole.
func (l *Log) CheckpointWith(snapshot []value.Tuple, carry []Record) error {
	if out := fpWalCheckpoint.Eval(); out != nil {
		return out.Err
	}
	var tail []byte
	for _, r := range carry {
		tail = appendRecord(tail, r)
	}
	if err := l.store.CheckpointSwap(l.name+".ckpt", value.EncodeTuples(snapshot), l.name, tail); err != nil {
		return err
	}
	l.mu.Lock()
	l.records = len(carry)
	l.bytes = int64(len(tail))
	l.gen++
	l.mu.Unlock()
	return nil
}

// LoadCheckpoint returns the last checkpoint's snapshot (nil if none).
func (l *Log) LoadCheckpoint() ([]value.Tuple, error) {
	data := l.store.ReadAll(l.name + ".ckpt")
	if len(data) == 0 {
		return nil, nil
	}
	return value.DecodeTuples(data)
}

// RecoveryResult is the outcome of a restart.
type RecoveryResult struct {
	// Snapshot is the checkpoint image (nil if none was taken).
	Snapshot []value.Tuple
	// Redo lists the post-checkpoint mutations of committed transactions,
	// in log order.
	Redo []Record
	// Committed, InDoubt and AbortedTxns classify the transactions seen.
	// InDoubt lists every transaction found prepared but neither
	// committed nor aborted in the log — including ones a resolver then
	// settled (see ResolvedCommits / PresumedAborts); the unresolved
	// leak count is len(InDoubt) - len(ResolvedCommits) -
	// len(PresumedAborts).
	Committed   []txn.ID
	InDoubt     []txn.ID
	AbortedTxns []txn.ID
	// ResolvedCommits lists in-doubt transactions the coordinator's
	// decision log resolved to commit (their effects are in Redo);
	// PresumedAborts lists in-doubt transactions with no logged decision,
	// aborted by the presumed-abort convention.
	ResolvedCommits []txn.ID
	PresumedAborts  []txn.ID
	// TornBytes is how much trailing garbage a mid-append crash left past
	// the last valid record; the tail was truncated to the valid prefix.
	TornBytes int64
	// MaxTS is the highest commit timestamp seen; the restarted commit
	// clock must advance past it before allocating new timestamps.
	MaxTS uint64
}

// Decider resolves an in-doubt transaction at recovery: it reports the
// coordinator's durably-logged decision for tx, with known=false when no
// decision was logged (which, by the presumed-abort convention, means
// abort). wal.DecisionLog.Decision is the canonical implementation.
type Decider func(tx txn.ID) (ts uint64, commit bool, known bool)

// Recover reads the checkpoint and log and computes the redo list: the
// insert/delete records of every transaction with a commit marker.
// Prepared-but-unresolved transactions are reported in doubt (their
// effects are NOT redone). Equivalent to RecoverResolved(nil).
func (l *Log) Recover() (*RecoveryResult, error) {
	return l.RecoverResolved(nil)
}

// RecoverResolved is Recover plus in-doubt resolution: each transaction
// found prepared but undecided in this log is settled by consulting the
// coordinator's decision log via decide — a logged commit decision joins
// the redo set at its decided timestamp; absence of a decision means the
// coordinator never committed, so the transaction is presumed aborted.
// Either way the outcome is appended to the log (a commit or abort
// marker) so the next restart needs no resolver, and a torn tail left by
// a mid-append crash is truncated to the valid record prefix first.
func (l *Log) RecoverResolved(decide Decider) (*RecoveryResult, error) {
	snap, err := l.LoadCheckpoint()
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint: %w", err)
	}
	recs, valid, total := l.scanPrefix()
	res := &RecoveryResult{Snapshot: snap, TornBytes: total - valid}
	if res.TornBytes > 0 {
		if err := l.store.TruncateTo(l.name, valid); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		l.mu.Lock()
		l.bytes = valid
		l.mu.Unlock()
	}
	committed := map[txn.ID]bool{}
	commitTS := map[txn.ID]uint64{}
	prepared := map[txn.ID]bool{}
	aborted := map[txn.ID]bool{}
	for _, r := range recs {
		switch r.Type {
		case RecPrepare:
			prepared[r.Txn] = true
		case RecCommit:
			committed[r.Txn] = true
			commitTS[r.Txn] = r.TS
		case RecAbort:
			aborted[r.Txn] = true
		}
	}
	var heal []Record
	for id := range prepared {
		if committed[id] || aborted[id] {
			continue
		}
		res.InDoubt = append(res.InDoubt, id)
		if decide == nil {
			continue
		}
		if ts, commit, known := decide(id); known && commit {
			committed[id] = true
			commitTS[id] = ts
			res.ResolvedCommits = append(res.ResolvedCommits, id)
			heal = append(heal, Record{Type: RecCommit, Txn: id, TS: ts})
		} else {
			aborted[id] = true
			res.PresumedAborts = append(res.PresumedAborts, id)
			heal = append(heal, Record{Type: RecAbort, Txn: id})
		}
	}
	for _, r := range recs {
		if (r.Type == RecInsert || r.Type == RecDelete) && committed[r.Txn] {
			r.TS = commitTS[r.Txn] // stamp redo with its commit timestamp
			res.Redo = append(res.Redo, r)
		}
	}
	for _, ts := range commitTS {
		if ts > res.MaxTS {
			res.MaxTS = ts
		}
	}
	for id := range committed {
		res.Committed = append(res.Committed, id)
	}
	for id := range aborted {
		res.AbortedTxns = append(res.AbortedTxns, id)
	}
	if len(heal) > 0 {
		// Make the resolutions durable so the next restart sees a decided
		// log instead of re-consulting the coordinator.
		if err := l.Append(heal...); err != nil {
			return nil, fmt.Errorf("wal: healing resolved outcomes: %w", err)
		}
	}
	return res, nil
}
