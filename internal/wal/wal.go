// Package wal implements write-ahead redo logging and restart recovery
// on the multi-computer's stable storage (paper §3.2: disk-attached PEs
// "implement stable storage and automatic recovery upon system failures.
// This approach leads to a simplification in the design of the database
// management system").
//
// The design exploits that simplification: OFM updates are deferred —
// buffered in the transaction's write set and applied to the main-memory
// store only after commit. The log therefore carries redo records only
// (no undo): at 2PC prepare the participant appends its write set plus a
// prepare marker; the commit marker makes the transaction durable.
// Recovery loads the last checkpoint and replays exactly the
// transactions whose commit marker made it to the log.
package wal

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/machine"
	"repro/internal/txn"
	"repro/internal/value"
)

// RecType tags a log record.
type RecType uint8

// Log record types.
const (
	RecInsert RecType = iota + 1
	RecDelete
	RecPrepare
	RecCommit
	RecAbort
)

func (t RecType) String() string {
	switch t {
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	case RecPrepare:
		return "prepare"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	}
	return "?"
}

// Record is one redo log entry. Updates are logged as delete+insert.
// TS is the commit timestamp: written on commit markers, and stamped by
// Recover onto each committed transaction's redo records so replay can
// rebuild multiversion visibility exactly as it was before the crash.
type Record struct {
	Type  RecType
	Txn   txn.ID
	TS    uint64
	Tuple value.Tuple // payload for insert/delete; nil for markers
}

// appendRecord encodes: [type:1][txn:8][ts:8][hasTuple:1][tuple...].
func appendRecord(buf []byte, r Record) []byte {
	buf = append(buf, byte(r.Type))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Txn))
	buf = binary.BigEndian.AppendUint64(buf, r.TS)
	if r.Tuple == nil {
		buf = append(buf, 0)
		return buf
	}
	buf = append(buf, 1)
	return value.AppendTuple(buf, r.Tuple)
}

func decodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < 18 {
		return Record{}, 0, fmt.Errorf("wal: truncated record header")
	}
	r := Record{
		Type: RecType(buf[0]),
		Txn:  txn.ID(binary.BigEndian.Uint64(buf[1:9])),
		TS:   binary.BigEndian.Uint64(buf[9:17]),
	}
	if r.Type < RecInsert || r.Type > RecAbort {
		return Record{}, 0, fmt.Errorf("wal: bad record type %d", buf[0])
	}
	off := 17
	hasTuple := buf[off]
	off++
	if hasTuple == 0 {
		return r, off, nil
	}
	t, n, err := value.DecodeTuple(buf[off:])
	if err != nil {
		return Record{}, 0, fmt.Errorf("wal: record payload: %w", err)
	}
	r.Tuple = t
	return r, off + n, nil
}

// Log is one OFM's write-ahead log plus checkpoint on a stable store.
type Log struct {
	store *machine.StableStore
	name  string // log segment; checkpoint lives at name+".ckpt"

	mu      sync.Mutex
	records int
	bytes   int64
}

// Open attaches a log to a segment of a stable store. Existing contents
// (from before a crash) are preserved.
func Open(store *machine.StableStore, name string) (*Log, error) {
	if store == nil {
		return nil, fmt.Errorf("wal: nil stable store")
	}
	if name == "" {
		return nil, fmt.Errorf("wal: empty log name")
	}
	l := &Log{store: store, name: name}
	l.bytes = store.Size(name)
	return l, nil
}

// Name returns the log's segment name.
func (l *Log) Name() string { return l.name }

// Append durably appends records as one write (one disk force).
func (l *Log) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	if _, err := l.store.Append(l.name, buf); err != nil {
		return err
	}
	l.mu.Lock()
	l.records += len(recs)
	l.bytes += int64(len(buf))
	l.mu.Unlock()
	return nil
}

// AppendCommit durably appends tx's commit marker through the stable
// store's group-commit path: the disk force is shared with whatever
// other logs on the same disk PE are forcing commit markers at that
// moment (concurrent pipelined DML commits on different fragments land
// on the same stable store). The caller returns only after its marker
// is durable, so commit semantics are unchanged; under concurrency the
// number of disk forces drops from one per commit toward one per burst.
// Different transactions committing on the *same* fragment never
// overlap here (strict 2PL serializes them), which is exactly why the
// batching lives on the shared store rather than the per-fragment log.
func (l *Log) AppendCommit(tx txn.ID, ts uint64) error {
	buf := appendRecord(nil, Record{Type: RecCommit, Txn: tx, TS: ts})
	if _, err := l.store.GroupAppend(l.name, buf); err != nil {
		return err
	}
	l.mu.Lock()
	l.records++
	l.bytes += int64(len(buf))
	l.mu.Unlock()
	return nil
}

// Records returns how many records this Log instance has appended.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Bytes returns the log segment's current size.
func (l *Log) Bytes() int64 {
	return l.store.Size(l.name)
}

// Scan decodes the whole log segment.
func (l *Log) Scan() ([]Record, error) {
	data := l.store.ReadAll(l.name)
	var out []Record
	off := 0
	for off < len(data) {
		r, n, err := decodeRecord(data[off:])
		if err != nil {
			return nil, fmt.Errorf("wal: scan at offset %d: %w", off, err)
		}
		out = append(out, r)
		off += n
	}
	return out, nil
}

// Checkpoint atomically replaces the checkpoint with the given snapshot
// and truncates the log. Transactions committed before the checkpoint
// are folded into the snapshot; the log restarts empty.
func (l *Log) Checkpoint(snapshot []value.Tuple) error {
	l.store.Replace(l.name+".ckpt", value.EncodeTuples(snapshot))
	l.store.Truncate(l.name)
	l.mu.Lock()
	l.records = 0
	l.bytes = 0
	l.mu.Unlock()
	return nil
}

// LoadCheckpoint returns the last checkpoint's snapshot (nil if none).
func (l *Log) LoadCheckpoint() ([]value.Tuple, error) {
	data := l.store.ReadAll(l.name + ".ckpt")
	if len(data) == 0 {
		return nil, nil
	}
	return value.DecodeTuples(data)
}

// RecoveryResult is the outcome of a restart.
type RecoveryResult struct {
	// Snapshot is the checkpoint image (nil if none was taken).
	Snapshot []value.Tuple
	// Redo lists the post-checkpoint mutations of committed transactions,
	// in log order.
	Redo []Record
	// Committed, InDoubt and AbortedTxns classify the transactions seen.
	Committed   []txn.ID
	InDoubt     []txn.ID // prepared but neither committed nor aborted
	AbortedTxns []txn.ID
	// MaxTS is the highest commit timestamp seen; the restarted commit
	// clock must advance past it before allocating new timestamps.
	MaxTS uint64
}

// Recover reads the checkpoint and log and computes the redo list: the
// insert/delete records of every transaction with a commit marker.
// Prepared-but-unresolved transactions are reported in doubt (their
// effects are NOT redone; the presumed-abort convention).
func (l *Log) Recover() (*RecoveryResult, error) {
	snap, err := l.LoadCheckpoint()
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint: %w", err)
	}
	recs, err := l.Scan()
	if err != nil {
		return nil, err
	}
	committed := map[txn.ID]bool{}
	commitTS := map[txn.ID]uint64{}
	prepared := map[txn.ID]bool{}
	aborted := map[txn.ID]bool{}
	res := &RecoveryResult{Snapshot: snap}
	for _, r := range recs {
		switch r.Type {
		case RecPrepare:
			prepared[r.Txn] = true
		case RecCommit:
			committed[r.Txn] = true
			commitTS[r.Txn] = r.TS
			if r.TS > res.MaxTS {
				res.MaxTS = r.TS
			}
		case RecAbort:
			aborted[r.Txn] = true
		}
	}
	for _, r := range recs {
		if (r.Type == RecInsert || r.Type == RecDelete) && committed[r.Txn] {
			r.TS = commitTS[r.Txn] // stamp redo with its commit timestamp
			res.Redo = append(res.Redo, r)
		}
	}
	for id := range committed {
		res.Committed = append(res.Committed, id)
	}
	for id := range prepared {
		if !committed[id] && !aborted[id] {
			res.InDoubt = append(res.InDoubt, id)
		}
	}
	for id := range aborted {
		res.AbortedTxns = append(res.AbortedTxns, id)
	}
	return res, nil
}
