package wal

import (
	"testing"

	"repro/internal/value"
)

// FuzzDecodeRecord feeds hostile bytes to the log-record decoder: it
// must never panic or over-read, and whatever it accepts must re-encode
// to exactly the bytes it consumed (so recovery's valid-prefix scan is
// well-defined on any torn or corrupt tail).
func FuzzDecodeRecord(f *testing.F) {
	seedRecords := []Record{
		{Type: RecInsert, Txn: 1, Tuple: value.Ints(1, 100)},
		{Type: RecDelete, Txn: 2, TS: 7, Tuple: value.Ints(2, 200)},
		{Type: RecPrepare, Txn: 3},
		{Type: RecCommit, Txn: 4, TS: 99},
		{Type: RecAbort, Txn: 5},
	}
	for _, r := range seedRecords {
		f.Add(appendRecord(nil, r))
	}
	// Hostile shapes: truncated header, bad type, lying hasTuple flag,
	// huge declared arity.
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{99, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0})
	f.Add(append(appendRecord(nil, Record{Type: RecPrepare, Txn: 1})[:17], 1, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decodeRecord consumed %d of %d bytes", n, len(data))
		}
		if r.Type < RecInsert || r.Type > RecAbort {
			t.Fatalf("accepted invalid record type %d", r.Type)
		}
		// Semantic round-trip: whatever was accepted must re-encode and
		// re-decode to the same record.
		re := appendRecord(nil, r)
		r2, n2, err := decodeRecord(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(re) || r2.Type != r.Type || r2.Txn != r.Txn || r2.TS != r.TS {
			t.Fatalf("re-decode mismatch: %+v/%d vs %+v/%d", r2, n2, r, len(re))
		}
		if (r2.Tuple == nil) != (r.Tuple == nil) || (r.Tuple != nil && !value.EqualTuples(r.Tuple, r2.Tuple)) {
			t.Fatalf("tuple did not round-trip: %v vs %v", r.Tuple, r2.Tuple)
		}
	})
}
