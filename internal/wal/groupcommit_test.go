package wal

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/txn"
)

func txnID(i int) txn.ID { return txn.ID(i) }

// Group commit: AppendCommit routes the commit marker through the
// stable store's shared-force path. These tests pin durability (the
// marker is a normal RecCommit on disk) and coalescing (concurrent
// commits across logs on one store cost fewer forces than commits).

func TestAppendCommitDurable(t *testing.T) {
	_, l := newLog(t)
	if err := l.Append(
		Record{Type: RecInsert, Txn: 7, Tuple: tup(1, 10)},
		Record{Type: RecPrepare, Txn: 7},
	); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(7, 1); err != nil {
		t.Fatal(err)
	}
	res, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Committed) != 1 || res.Committed[0] != 7 {
		t.Fatalf("committed = %v", res.Committed)
	}
	if len(res.Redo) != 1 || res.Redo[0].Type != RecInsert {
		t.Fatalf("redo = %v", res.Redo)
	}
	if l.Records() != 3 {
		t.Errorf("records = %d, want 3", l.Records())
	}
}

// TestAppendCommitCoalesces commits 32 transactions concurrently on 8
// logs sharing one stable store and checks every marker is durable
// while the store forced less often than once per commit. (Coalescing
// depends on overlap, so the force-count assertion is a ≤ bound plus a
// correctness sweep, not an exact batch shape.)
func TestAppendCommitCoalesces(t *testing.T) {
	m, err := machine.New(machine.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	store, err := machine.NewStableStore(m.PE(0), machine.DiskModel{})
	if err != nil {
		t.Fatal(err)
	}
	const logs, perLog = 8, 4
	ls := make([]*Log, logs)
	for i := range ls {
		if ls[i], err = Open(store, fmt.Sprintf("wal-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < logs; i++ {
		for j := 0; j < perLog; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				if err := ls[i].AppendCommit(txnID(i*perLog+j+1), uint64(i*perLog+j+1)); err != nil {
					t.Errorf("log %d commit %d: %v", i, j, err)
				}
			}(i, j)
		}
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for i := 0; i < logs; i++ {
		res, err := ls[i].Recover()
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range res.Committed {
			seen[uint64(id)] = true
		}
	}
	if len(seen) != logs*perLog {
		t.Fatalf("recovered %d committed transactions, want %d", len(seen), logs*perLog)
	}
	if store.Syncs() > store.Writes() {
		t.Fatalf("syncs %d exceed writes %d", store.Syncs(), store.Writes())
	}
	if store.Writes() != logs*perLog {
		t.Fatalf("writes = %d, want %d", store.Writes(), logs*perLog)
	}
}
