package wal

import (
	"fmt"
)

// Log shipping: the primary reads raw log bytes to stream to replicas,
// and a replica appends the shipped bytes to its own identically named
// log so byte offsets stay aligned end to end — a replica's durable
// replication position is simply the size of its local copy. Offsets
// are only meaningful within one checkpoint generation: a checkpoint
// truncates the log and restarts offsets at zero, so every shipped
// offset travels with the generation it belongs to, and a mismatch
// forces a full fragment resync instead of corrupt splicing.

// Generation returns the log's checkpoint generation: 0 at creation,
// bumped by every checkpoint truncation.
func (l *Log) Generation() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// ReadFrom returns the raw log bytes from offset off to the current
// end, plus the log's total size and generation. A clamped read (off
// past the end) returns nil bytes without touching the disk — the
// shipping poll loop calls this continuously, and an idle poll must
// cost nothing. The caller must treat a generation change since it
// learned off as invalidating the offset.
func (l *Log) ReadFrom(off int64) (data []byte, size int64, gen uint64) {
	l.mu.Lock()
	gen = l.gen
	size = l.bytes
	l.mu.Unlock()
	if off < 0 {
		off = 0
	}
	if off >= size {
		return nil, size, gen
	}
	all := l.store.ReadAll(l.name)
	if int64(len(all)) < size {
		size = int64(len(all))
	}
	if off >= size {
		return nil, size, gen
	}
	// Ship only up to the tracked size: a torn tail past it (crash
	// mid-append) is not yet part of the log's record stream.
	return all[off:size], size, gen
}

// ShipSize returns the log's current size and generation from its
// in-memory counters — the primary's per-batch position probe, which
// must not pay a disk scan per poll (ValidSize does, and is reserved
// for the replica's durable resubscribe position).
func (l *Log) ShipSize() (int64, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes, l.gen
}

// SyncImage captures the full fragment state for a first-contact or
// post-checkpoint resync: the raw checkpoint segment, the raw log
// segment, and the generation both belong to.
func (l *Log) SyncImage() (ckpt, logBytes []byte, gen uint64) {
	l.mu.Lock()
	gen = l.gen
	l.mu.Unlock()
	return l.store.ReadAll(l.name + ".ckpt"), l.store.ReadAll(l.name), gen
}

// InstallImage replaces the local checkpoint and log with a shipped
// SyncImage in one atomic stable-storage swap, and adopts the shipped
// generation so subsequent offsets line up with the primary's.
func (l *Log) InstallImage(ckpt, logBytes []byte, gen uint64) error {
	if err := l.store.CheckpointSwap(l.name+".ckpt", ckpt, l.name, logBytes); err != nil {
		return err
	}
	recs, valid := DecodeRecords(logBytes)
	l.mu.Lock()
	l.records = len(recs)
	l.bytes = valid
	l.gen = gen
	l.mu.Unlock()
	return nil
}

// AppendRaw durably appends already-encoded record bytes at the given
// expected offset (the shipped frame's start offset). The append is
// refused when the local log isn't exactly at that offset — a torn
// stream must resubscribe rather than splice garbage.
func (l *Log) AppendRaw(b []byte, off int64) error {
	if size := l.store.Size(l.name); size != off {
		return fmt.Errorf("wal: %s is at offset %d, shipped bytes start at %d", l.name, size, off)
	}
	if _, err := l.store.Append(l.name, b); err != nil {
		return err
	}
	recs, _ := DecodeRecords(b)
	l.mu.Lock()
	l.records += len(recs)
	l.bytes += int64(len(b))
	l.mu.Unlock()
	return nil
}

// ValidSize returns the byte length of the log's longest decodable
// record prefix — the replica's durable resubscribe offset (trailing
// torn bytes from a mid-append crash don't count).
func (l *Log) ValidSize() int64 {
	_, valid, _ := l.scanPrefix()
	return valid
}

// DecodeRecords decodes the longest valid record prefix of b, returning
// the records and the prefix's byte length. Garbage past the prefix is
// ignored — a shipped batch can end in a torn record when the primary
// died mid-append, exactly like a local log tail.
func DecodeRecords(b []byte) ([]Record, int64) {
	var recs []Record
	off := 0
	for off < len(b) {
		r, n, err := decodeRecord(b[off:])
		if err != nil {
			break
		}
		recs = append(recs, r)
		off += n
	}
	return recs, int64(off)
}
