package wal

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/txn"
	"repro/internal/value"
)

// TestTornTailEveryOffset is the torn-write sweep: a multi-record log is
// cut at every possible byte offset, simulating a crash mid-append.
// Recovery must never error or panic, must recover exactly the records
// whose bytes fully landed, and the healed log must accept a new append
// that round-trips.
func TestTornTailEveryOffset(t *testing.T) {
	full := []Record{
		{Type: RecInsert, Txn: 1, Tuple: tup(1, 100)},
		{Type: RecPrepare, Txn: 1},
		{Type: RecCommit, Txn: 1, TS: 10},
		{Type: RecDelete, Txn: 2, Tuple: tup(2, 200)},
		{Type: RecInsert, Txn: 2, Tuple: tup(2, 201)},
		{Type: RecPrepare, Txn: 2},
		{Type: RecCommit, Txn: 2, TS: 20},
	}
	var encoded []byte
	boundaries := map[int]int{} // byte offset -> records fully encoded at it
	for i, r := range full {
		boundaries[len(encoded)] = i
		encoded = appendRecord(encoded, r)
	}
	boundaries[len(encoded)] = len(full)

	m, err := machine.New(machine.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(encoded); cut++ {
		store, err := machine.NewStableStore(m.PE(0), machine.DiskModel{})
		if err != nil {
			t.Fatal(err)
		}
		if cut > 0 {
			if _, err := store.Append("torn", encoded[:cut]); err != nil {
				t.Fatal(err)
			}
		}
		l, err := Open(store, "torn")
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Recover()
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		// Count the records that should survive: the longest record
		// prefix fully contained in the cut.
		want := 0
		for b, n := range boundaries {
			if b <= cut && n > want {
				want = n
			}
		}
		recs, err := l.Scan()
		if err != nil {
			t.Fatalf("cut %d: rescan: %v", cut, err)
		}
		if len(recs) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), want)
		}
		for i, r := range recs {
			if r.Type != full[i].Type || r.Txn != full[i].Txn {
				t.Fatalf("cut %d: record %d = %+v, want %+v", cut, i, r, full[i])
			}
		}
		// The tail is truncated: the segment holds exactly the valid prefix.
		wantBytes := int64(0)
		for b, n := range boundaries {
			if n == want {
				wantBytes = int64(b)
			}
		}
		if store.Size("torn") != wantBytes {
			t.Fatalf("cut %d: segment holds %d bytes, want %d", cut, store.Size("torn"), wantBytes)
		}
		_ = res
		// A post-recovery append round-trips on the healed log.
		extra := Record{Type: RecInsert, Txn: 99, Tuple: tup(7, 700)}
		if err := l.Append(extra, Record{Type: RecCommit, Txn: 99, TS: 99}); err != nil {
			t.Fatalf("cut %d: post-recovery append: %v", cut, err)
		}
		recs, err = l.Scan()
		if err != nil {
			t.Fatalf("cut %d: post-append scan: %v", cut, err)
		}
		if len(recs) != want+2 {
			t.Fatalf("cut %d: post-append scan has %d records, want %d", cut, len(recs), want+2)
		}
		last := recs[len(recs)-2]
		if last.Txn != 99 || !value.EqualTuples(last.Tuple, extra.Tuple) {
			t.Fatalf("cut %d: appended record did not round-trip: %+v", cut, last)
		}
	}
}

// TestRecoverResolvedInDoubt pins the in-doubt resolution contract:
// prepared-undecided transactions commit when the coordinator's decision
// log says so and are presumed aborted otherwise, and the resolution is
// healed into the log so a second restart needs no resolver.
func TestRecoverResolvedInDoubt(t *testing.T) {
	_, l := newLog(t)
	must(t, l.Append(
		// Txn 1: prepared, coordinator decided commit (marker lost in crash).
		Record{Type: RecInsert, Txn: 1, Tuple: tup(1)},
		Record{Type: RecPrepare, Txn: 1},
		// Txn 2: prepared, no decision anywhere — presumed abort.
		Record{Type: RecInsert, Txn: 2, Tuple: tup(2)},
		Record{Type: RecPrepare, Txn: 2},
	))
	decide := func(tx txn.ID) (uint64, bool, bool) {
		if tx == 1 {
			return 77, true, true
		}
		return 0, false, false
	}
	res, err := l.RecoverResolved(decide)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InDoubt) != 2 {
		t.Errorf("in doubt = %v, want both txns", res.InDoubt)
	}
	if len(res.ResolvedCommits) != 1 || res.ResolvedCommits[0] != 1 {
		t.Errorf("resolved commits = %v", res.ResolvedCommits)
	}
	if len(res.PresumedAborts) != 1 || res.PresumedAborts[0] != 2 {
		t.Errorf("presumed aborts = %v", res.PresumedAborts)
	}
	if len(res.Redo) != 1 || res.Redo[0].Txn != 1 || res.Redo[0].TS != 77 {
		t.Errorf("redo = %+v, want txn 1 stamped at ts 77", res.Redo)
	}
	if res.MaxTS != 77 {
		t.Errorf("MaxTS = %d, want 77", res.MaxTS)
	}
	// Second restart without any resolver: outcomes were healed into the
	// log, so nothing is in doubt anymore.
	res2, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.InDoubt) != 0 {
		t.Errorf("after healing, in doubt = %v", res2.InDoubt)
	}
	if len(res2.Redo) != 1 || res2.Redo[0].Txn != 1 {
		t.Errorf("after healing, redo = %+v", res2.Redo)
	}
}

func TestDecisionLogRoundTrip(t *testing.T) {
	m, err := machine.New(machine.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	store, err := machine.NewStableStore(m.PE(0), machine.DiskModel{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDecisionLog(store, "2pc-decisions")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RecordCommit(5, 50); err != nil {
		t.Fatal(err)
	}
	if err := d.RecordCommit(6, 60); err != nil {
		t.Fatal(err)
	}
	if ts, commit, known := d.Decision(5); !known || !commit || ts != 50 {
		t.Errorf("Decision(5) = %d,%v,%v", ts, commit, known)
	}
	if _, _, known := d.Decision(7); known {
		t.Error("Decision(7) should be unknown (presumed abort)")
	}
	// Reopen replays the segment (restart survival).
	d2, err := OpenDecisionLog(store, "2pc-decisions")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 2 {
		t.Errorf("reopened decision log has %d entries", d2.Len())
	}
	if ts, commit, known := d2.Decision(6); !known || !commit || ts != 60 {
		t.Errorf("reopened Decision(6) = %d,%v,%v", ts, commit, known)
	}
	// A torn trailing entry (partial write) is no decision at all.
	if _, err := store.Append("2pc-decisions", []byte{decisionTag, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	d3, err := OpenDecisionLog(store, "2pc-decisions")
	if err != nil {
		t.Fatal(err)
	}
	if d3.Len() != 2 {
		t.Errorf("torn entry counted as decision: %d entries", d3.Len())
	}
	if _, err := OpenDecisionLog(nil, "x"); err == nil {
		t.Error("nil store should error")
	}
	if _, err := OpenDecisionLog(store, ""); err == nil {
		t.Error("empty name should error")
	}
}
