package value

import "sync"

// Vec is a typed column vector: one column of a Batch, stored as a flat
// slice of the column's native representation so kernels can loop over
// machine words instead of tagged unions. Exactly one of I/F/S is
// populated, chosen by Kind (booleans ride in I as 0/1). Null is nil
// when the column has no NULLs — the dense case — so kernels can skip
// the per-row NULL test entirely.
type Vec struct {
	Kind Kind
	Null []bool    // nil = no NULLs anywhere in the column
	I    []int64   // KindInt and KindBool payloads
	F    []float64 // KindFloat payloads
	S    []string  // KindString payloads
}

// Len returns the number of physical rows in the vector.
func (v *Vec) Len() int {
	switch v.Kind {
	case KindFloat:
		return len(v.F)
	case KindString:
		return len(v.S)
	default:
		return len(v.I)
	}
}

// Value materializes row i of the vector as a tagged scalar.
func (v *Vec) Value(i int) Value {
	if v.Null != nil && v.Null[i] {
		return Null
	}
	switch v.Kind {
	case KindBool:
		return NewBool(v.I[i] != 0)
	case KindInt:
		return NewInt(v.I[i])
	case KindFloat:
		return NewFloat(v.F[i])
	case KindString:
		return NewString(v.S[i])
	default:
		return Null
	}
}

// IsNull reports whether row i of the vector is NULL.
func (v *Vec) IsNull(i int) bool { return v.Null != nil && v.Null[i] }

// Gather builds a dense vector holding the given physical rows of v, in
// order — the column-wise copy a batch join uses to assemble its output.
func (v *Vec) Gather(idxs []int32) *Vec {
	out := &Vec{Kind: v.Kind}
	if v.Null != nil {
		out.Null = make([]bool, len(idxs))
		for i, r := range idxs {
			out.Null[i] = v.Null[r]
		}
	}
	switch v.Kind {
	case KindFloat:
		out.F = make([]float64, len(idxs))
		for i, r := range idxs {
			out.F[i] = v.F[r]
		}
	case KindString:
		out.S = make([]string, len(idxs))
		for i, r := range idxs {
			out.S[i] = v.S[r]
		}
	default:
		out.I = make([]int64, len(idxs))
		for i, r := range idxs {
			out.I[i] = v.I[r]
		}
	}
	return out
}

// Batch is a columnar slice of a relation: per-column vectors plus a
// selection vector of the physical row indices that are logically
// present. Sel == nil means every physical row is selected (the dense
// case). Operators narrow Sel instead of copying tuples; materialization
// back to row form is deferred to the plan root.
type Batch struct {
	Schema *Schema
	Cols   []*Vec
	Sel    []int32 // selected physical rows, ascending; nil = all
	Rows   int     // physical row count of every column
}

// Len returns the number of selected (logical) rows.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.Rows
}

// Row returns the physical row index of logical row i.
func (b *Batch) Row(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// Value materializes column col of logical row i.
func (b *Batch) Value(col, i int) Value { return b.Cols[col].Value(b.Row(i)) }

// Project returns a batch exposing only the given columns (a pure
// remap: vectors and the selection vector are shared, nothing copies).
func (b *Batch) Project(idxs []int, schema *Schema) *Batch {
	cols := make([]*Vec, len(idxs))
	for i, ix := range idxs {
		cols[i] = b.Cols[ix]
	}
	return &Batch{Schema: schema, Cols: cols, Sel: b.Sel, Rows: b.Rows}
}

// Materialize converts the selected rows back to a row-oriented
// Relation, in selection order, using one flat backing array for all
// tuples (the PR-4 allocation discipline).
func (b *Batch) Materialize() *Relation {
	n := b.Len()
	w := len(b.Cols)
	out := &Relation{Schema: b.Schema, Tuples: make([]Tuple, n)}
	if n == 0 || w == 0 {
		for i := range out.Tuples {
			out.Tuples[i] = Tuple{}
		}
		return out
	}
	flat := make([]Value, n*w)
	for i := 0; i < n; i++ {
		row := b.Row(i)
		t := flat[i*w : (i+1)*w : (i+1)*w]
		for c, vec := range b.Cols {
			t[c] = vec.Value(row)
		}
		out.Tuples[i] = t
	}
	return out
}

// AppendKey appends the canonical comparison key of the given columns of
// physical row `row` to buf, byte-compatible with Tuple.AppendKeyOn.
func (b *Batch) AppendKey(buf []byte, row int, idxs []int) []byte {
	for _, ix := range idxs {
		buf = AppendValue(buf, b.Cols[ix].Value(row))
	}
	return buf
}

// HashRow hashes the given columns of physical row `row`, producing the
// same value as HashTuple over the materialized tuple — the invariant
// that keeps a columnar hash exchange bucket-aligned with the row one.
func (b *Batch) HashRow(row int, idxs []int) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, ix := range idxs {
		h = (h ^ Hash64(b.Cols[ix].Value(row))) * prime64
	}
	return h
}

// ConcatBatches concatenates the selected rows of the given batches (in
// order) into one dense batch. Inputs are consumed: their selection
// vectors return to the pool.
func ConcatBatches(schema *Schema, batches []*Batch) *Batch {
	w := schema.Len()
	n := 0
	for _, b := range batches {
		n += b.Len()
	}
	out := &Batch{Schema: schema, Cols: make([]*Vec, w), Rows: n}
	for c := 0; c < w; c++ {
		// The column kind comes from the first batch contributing rows;
		// sibling batches of one schema always agree (same cache layout).
		kind := schema.Column(c).Kind
		for _, b := range batches {
			if b.Len() > 0 {
				kind = b.Cols[c].Kind
				break
			}
		}
		vec := &Vec{Kind: kind}
		switch kind {
		case KindFloat:
			vec.F = make([]float64, 0, n)
		case KindString:
			vec.S = make([]string, 0, n)
		default:
			vec.I = make([]int64, 0, n)
		}
		for _, b := range batches {
			bn := b.Len()
			for i := 0; i < bn; i++ {
				row := b.Row(i)
				src := b.Cols[c]
				if src.IsNull(row) {
					if vec.Null == nil {
						vec.Null = make([]bool, n)
					}
					vec.Null[vec.appendZero()] = true
					continue
				}
				switch kind {
				case KindFloat:
					vec.F = append(vec.F, src.F[row])
				case KindString:
					vec.S = append(vec.S, src.S[row])
				default:
					vec.I = append(vec.I, src.I[row])
				}
			}
		}
		out.Cols[c] = vec
	}
	for _, b := range batches {
		if b.Sel != nil {
			PutSel(b.Sel)
			b.Sel = nil
		}
	}
	return out
}

// appendZero appends a zero payload slot to the vector and returns its
// index — the NULL case of a concat append.
func (v *Vec) appendZero() int {
	switch v.Kind {
	case KindFloat:
		v.F = append(v.F, 0)
		return len(v.F) - 1
	case KindString:
		v.S = append(v.S, "")
		return len(v.S) - 1
	default:
		v.I = append(v.I, 0)
		return len(v.I) - 1
	}
}

// Size returns the approximate in-memory footprint of the selected rows
// in bytes, matching what Materialize()'s Relation would report.
func (b *Batch) Size() int {
	n := b.Len()
	if n == 0 {
		return 0
	}
	// Per-row slice header + per-value base cost.
	total := n * (24 + 16*len(b.Cols))
	for _, vec := range b.Cols {
		if vec.Kind != KindString {
			continue
		}
		if b.Sel != nil {
			for _, r := range b.Sel {
				total += len(vec.S[r])
			}
		} else {
			for _, s := range vec.S {
				total += len(s)
			}
		}
	}
	return total
}

// NewBatchFrom builds a columnar batch from row-oriented tuples. Every
// column must be uniform: each value NULL or of one consistent kind
// (the storage layer's Conform guarantees this for stored relations).
// Returns nil when a column is heterogeneous or a tuple is short — the
// caller falls back to the row path.
func NewBatchFrom(schema *Schema, tuples []Tuple) *Batch {
	w := schema.Len()
	n := len(tuples)
	cols := make([]*Vec, w)
	for c := 0; c < w; c++ {
		kind := schema.Column(c).Kind
		if kind == KindNull {
			// Infer from the first non-NULL value.
			for _, t := range tuples {
				if c < len(t) && !t[c].IsNull() {
					kind = t[c].Kind()
					break
				}
			}
		}
		vec := &Vec{Kind: kind}
		switch kind {
		case KindFloat:
			vec.F = make([]float64, n)
		case KindString:
			vec.S = make([]string, n)
		default:
			vec.I = make([]int64, n)
		}
		for i, t := range tuples {
			if c >= len(t) {
				return nil
			}
			v := t[c]
			if v.IsNull() {
				if vec.Null == nil {
					vec.Null = make([]bool, n)
				}
				vec.Null[i] = true
				continue
			}
			switch kind {
			case KindBool:
				if v.Kind() != KindBool {
					return nil
				}
				if v.Bool() {
					vec.I[i] = 1
				}
			case KindInt:
				if v.Kind() != KindInt {
					return nil
				}
				vec.I[i] = v.Int()
			case KindFloat:
				if k := v.Kind(); k != KindFloat && k != KindInt {
					return nil
				}
				vec.F[i] = v.Float()
			case KindString:
				if v.Kind() != KindString {
					return nil
				}
				vec.S[i] = v.Str()
			default:
				// All-NULL column with no declared kind: any value
				// reaching here is non-NULL and contradicts inference.
				return nil
			}
		}
		cols[c] = vec
	}
	return &Batch{Schema: schema, Cols: cols, Rows: n}
}

// maxPooledSel caps the capacity of selection vectors kept in the pool
// so one huge scan cannot pin memory forever (wire.PutBuf discipline).
const maxPooledSel = 1 << 20

var selPool = sync.Pool{
	New: func() any {
		s := make([]int32, 0, 1024)
		return &s
	},
}

// GetSel returns an empty selection-vector buffer from the pool.
func GetSel() []int32 { return (*selPool.Get().(*[]int32))[:0] }

// PutSel returns a selection-vector buffer to the pool. Oversized
// buffers are dropped to bound pooled memory.
func PutSel(s []int32) {
	if cap(s) == 0 || cap(s) > maxPooledSel {
		return
	}
	selPool.Put(&s)
}
