package value

import (
	"fmt"
	"strings"
)

// Column is one attribute of a relation schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema describes the attributes of a relation or tuple stream. A Schema
// is immutable after construction; operators derive new schemas rather
// than mutating existing ones.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. Duplicate column names are
// allowed (they arise from joins); lookup by name finds the first.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.byName[c.Name]; !dup {
			s.byName[c.Name] = i
		}
	}
	return s
}

// MustSchema builds a schema from alternating name, kind-name pairs, e.g.
// MustSchema("id", "INTEGER", "name", "VARCHAR"). It panics on bad input
// and exists for tests and examples.
func MustSchema(pairs ...string) *Schema {
	if len(pairs)%2 != 0 {
		panic("value: MustSchema needs name/type pairs")
	}
	cols := make([]Column, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		k, err := ParseKind(pairs[i+1])
		if err != nil {
			panic(err)
		}
		cols = append(cols, Column{Name: pairs[i], Kind: k})
	}
	return NewSchema(cols...)
}

// ParseKind maps a SQL type name onto a Kind.
func ParseKind(name string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return KindFloat, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return KindString, nil
	default:
		return KindNull, fmt.Errorf("value: unknown type %q", name)
	}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Index returns the position of the named column, or -1. Names match
// case-insensitively, and "rel.col" qualified names match their suffix.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	lower := strings.ToLower(name)
	for i, c := range s.cols {
		if strings.ToLower(c.Name) == lower {
			return i
		}
	}
	// Qualified lookup: match "r.c" against column "c" or column "r.c".
	if dot := strings.LastIndexByte(lower, '.'); dot >= 0 {
		suffix := lower[dot+1:]
		for i, c := range s.cols {
			if strings.ToLower(c.Name) == suffix {
				return i
			}
		}
	}
	// Or an unqualified name against a qualified column.
	for i, c := range s.cols {
		cl := strings.ToLower(c.Name)
		if dot := strings.LastIndexByte(cl, '.'); dot >= 0 && cl[dot+1:] == lower {
			return i
		}
	}
	return -1
}

// Project returns the schema of the given column positions.
func (s *Schema) Project(idxs []int) *Schema {
	cols := make([]Column, len(idxs))
	for i, ix := range idxs {
		cols[i] = s.cols[ix]
	}
	return NewSchema(cols...)
}

// Concat returns the schema of s followed by t (join output).
func (s *Schema) Concat(t *Schema) *Schema {
	cols := make([]Column, 0, len(s.cols)+len(t.cols))
	cols = append(cols, s.cols...)
	cols = append(cols, t.cols...)
	return NewSchema(cols...)
}

// Rename returns a schema with every column prefixed "prefix.name",
// stripping any existing qualifier first.
func (s *Schema) Rename(prefix string) *Schema {
	cols := make([]Column, len(s.cols))
	for i, c := range s.cols {
		base := c.Name
		if dot := strings.LastIndexByte(base, '.'); dot >= 0 {
			base = base[dot+1:]
		}
		cols[i] = Column{Name: prefix + "." + base, Kind: c.Kind}
	}
	return NewSchema(cols...)
}

// EqualSchema reports whether two schemas have identical column kinds
// (names are ignored: union compatibility is positional in PRISMA).
func EqualSchema(a, b *Schema) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.cols {
		if a.cols[i].Kind != b.cols[i].Kind {
			return false
		}
	}
	return true
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
