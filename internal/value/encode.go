package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of values and tuples. The format is used (a) to ship
// tuples across the simulated message-passing network, (b) to write WAL
// records to stable storage and (c) as canonical hash/grouping keys. It is
// self-describing per value: a one-byte kind tag followed by the payload.

// AppendValue appends the binary encoding of v to buf and returns it.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool:
		b := byte(0)
		if v.num != 0 {
			b = 1
		}
		buf = append(buf, b)
	case KindInt, KindFloat:
		buf = binary.BigEndian.AppendUint64(buf, v.num)
	case KindString:
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.str)))
		buf = append(buf, v.str...)
	}
	return buf
}

// DecodeValue decodes one value from buf, returning it and the number of
// bytes consumed.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Null, 0, fmt.Errorf("value: decode on empty buffer")
	}
	k := Kind(buf[0])
	switch k {
	case KindNull:
		return Null, 1, nil
	case KindBool:
		if len(buf) < 2 {
			return Null, 0, fmt.Errorf("value: truncated bool")
		}
		return NewBool(buf[1] != 0), 2, nil
	case KindInt:
		if len(buf) < 9 {
			return Null, 0, fmt.Errorf("value: truncated int")
		}
		return NewInt(int64(binary.BigEndian.Uint64(buf[1:9]))), 9, nil
	case KindFloat:
		if len(buf) < 9 {
			return Null, 0, fmt.Errorf("value: truncated float")
		}
		return NewFloat(math.Float64frombits(binary.BigEndian.Uint64(buf[1:9]))), 9, nil
	case KindString:
		if len(buf) < 5 {
			return Null, 0, fmt.Errorf("value: truncated string header")
		}
		n := int(binary.BigEndian.Uint32(buf[1:5]))
		if len(buf) < 5+n {
			return Null, 0, fmt.Errorf("value: truncated string body (want %d bytes)", n)
		}
		return NewString(string(buf[5 : 5+n])), 5 + n, nil
	default:
		return Null, 0, fmt.Errorf("value: bad kind tag %d", buf[0])
	}
}

// AppendTuple appends the binary encoding of t (a uint16 arity followed by
// each value) to buf and returns it.
func AppendTuple(buf []byte, t Tuple) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(t)))
	for _, v := range t {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeTuple decodes one tuple from buf, returning it and the number of
// bytes consumed.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("value: truncated tuple header")
	}
	arity := int(binary.BigEndian.Uint16(buf))
	off := 2
	// Every encoded value is at least 1 byte; cap the preallocation by
	// what the buffer could possibly hold so a hostile arity in a short
	// input cannot force a large allocation before the decode fails.
	t := make(Tuple, 0, min(arity, len(buf)-off))
	for i := 0; i < arity; i++ {
		v, n, err := DecodeValue(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("value: tuple field %d: %w", i, err)
		}
		t = append(t, v)
		off += n
	}
	return t, off, nil
}

// EncodeTuples encodes a batch of tuples: a uint32 count then each tuple.
func EncodeTuples(ts []Tuple) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(ts)))
	for _, t := range ts {
		buf = AppendTuple(buf, t)
	}
	return buf
}

// DecodeTuples decodes a batch written by EncodeTuples.
func DecodeTuples(buf []byte) ([]Tuple, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("value: truncated batch header")
	}
	n := int(binary.BigEndian.Uint32(buf))
	off := 4
	// Each encoded tuple is at least 2 bytes: bound the preallocation by
	// the buffer so a hostile count cannot allocate gigabytes up front.
	ts := make([]Tuple, 0, min(n, (len(buf)-off)/2+1))
	for i := 0; i < n; i++ {
		t, used, err := DecodeTuple(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("value: batch tuple %d: %w", i, err)
		}
		ts = append(ts, t)
		off += used
	}
	return ts, nil
}

// Hash64 returns a 64-bit FNV-1a hash of v's canonical encoding. Numeric
// cross-kind equality is respected: an int and a float that compare equal
// hash identically.
func Hash64(v Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	k := v.kind
	num := v.num
	// Canonicalize: a float with integral value hashes as the int.
	if k == KindFloat {
		f := math.Float64frombits(num)
		if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			k = KindInt
			num = uint64(int64(f))
		}
	}
	mix(byte(k))
	switch k {
	case KindBool, KindInt, KindFloat:
		for i := 0; i < 8; i++ {
			mix(byte(num >> (8 * i)))
		}
	case KindString:
		for i := 0; i < len(v.str); i++ {
			mix(v.str[i])
		}
	}
	return h
}

// HashTuple hashes the given columns of t, for partitioning and hash joins.
func HashTuple(t Tuple, idxs []int) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, ix := range idxs {
		h = (h ^ Hash64(t[ix])) * prime64
	}
	return h
}

// ---------- schema / relation wire encoding ----------

// AppendSchema appends the binary encoding of s to buf: a uint16 column
// count, then per column a kind byte and a length-prefixed name. It is
// used by the client/server wire protocol to ship result relations.
func AppendSchema(buf []byte, s *Schema) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(s.Len()))
	for i := 0; i < s.Len(); i++ {
		c := s.Column(i)
		buf = append(buf, byte(c.Kind))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(c.Name)))
		buf = append(buf, c.Name...)
	}
	return buf
}

// DecodeSchema decodes a schema from buf, returning it and the number of
// bytes consumed.
func DecodeSchema(buf []byte) (*Schema, int, error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("value: truncated schema header")
	}
	n := int(binary.BigEndian.Uint16(buf))
	off := 2
	cols := make([]Column, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < off+3 {
			return nil, 0, fmt.Errorf("value: truncated schema column %d", i)
		}
		k := Kind(buf[off])
		if k > KindString {
			return nil, 0, fmt.Errorf("value: schema column %d has bad kind tag %d", i, buf[off])
		}
		nameLen := int(binary.BigEndian.Uint16(buf[off+1 : off+3]))
		off += 3
		if len(buf) < off+nameLen {
			return nil, 0, fmt.Errorf("value: truncated schema column %d name", i)
		}
		cols = append(cols, Column{Name: string(buf[off : off+nameLen]), Kind: k})
		off += nameLen
	}
	return NewSchema(cols...), off, nil
}

// AppendRelation appends the encoding of a relation (schema, then tuple
// batch) to buf and returns it.
func AppendRelation(buf []byte, r *Relation) []byte {
	buf = AppendSchema(buf, r.Schema)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Tuples)))
	for _, t := range r.Tuples {
		buf = AppendTuple(buf, t)
	}
	return buf
}

// EncodeRelation encodes a relation for the wire protocol.
func EncodeRelation(r *Relation) []byte { return AppendRelation(nil, r) }

// DecodeRelation decodes a relation from buf, returning it and the number
// of bytes consumed.
func DecodeRelation(buf []byte) (*Relation, int, error) {
	s, off, err := DecodeSchema(buf)
	if err != nil {
		return nil, 0, err
	}
	if len(buf) < off+4 {
		return nil, 0, fmt.Errorf("value: truncated relation tuple count")
	}
	n := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	rel := NewRelation(s)
	rel.Tuples = make([]Tuple, 0, min(n, (len(buf)-off)/2+1))
	for i := 0; i < n; i++ {
		t, used, err := DecodeTuple(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("value: relation tuple %d: %w", i, err)
		}
		if len(t) != s.Len() {
			return nil, 0, fmt.Errorf("value: relation tuple %d has arity %d, schema has %d", i, len(t), s.Len())
		}
		rel.Tuples = append(rel.Tuples, t)
		off += used
	}
	return rel, off, nil
}
