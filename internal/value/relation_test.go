package value

import (
	"strings"
	"testing"
)

func mkRel(t *testing.T) *Relation {
	t.Helper()
	r := NewRelation(MustSchema("id", "INT", "name", "VARCHAR"))
	r.Append(
		NewTuple(NewInt(2), NewString("bob")),
		NewTuple(NewInt(1), NewString("ann")),
		NewTuple(NewInt(3), NewString("cat")),
		NewTuple(NewInt(1), NewString("ann")),
	)
	return r
}

func TestRelationSortDistinct(t *testing.T) {
	r := mkRel(t)
	r.Sort()
	if r.Tuples[0][0].Int() != 1 || r.Tuples[3][0].Int() != 3 {
		t.Errorf("Sort order wrong: %v", r.Tuples)
	}
	r.Distinct()
	if r.Len() != 3 {
		t.Errorf("Distinct left %d tuples, want 3", r.Len())
	}
}

func TestSortOnDesc(t *testing.T) {
	r := mkRel(t)
	r.SortOn([]int{0}, []bool{true})
	if r.Tuples[0][0].Int() != 3 {
		t.Errorf("descending sort got %v first", r.Tuples[0])
	}
	// Stable on ties: the two (1, ann) rows stay adjacent.
	last := r.Tuples[len(r.Tuples)-1]
	if last[0].Int() != 1 {
		t.Errorf("descending sort got %v last", last)
	}
}

func TestSortOnMultiKey(t *testing.T) {
	r := NewRelation(MustSchema("a", "INT", "b", "INT"))
	r.Append(Ints(1, 2), Ints(2, 1), Ints(1, 1), Ints(2, 2))
	r.SortOn([]int{0, 1}, nil)
	want := []Tuple{Ints(1, 1), Ints(1, 2), Ints(2, 1), Ints(2, 2)}
	for i := range want {
		if !EqualTuples(r.Tuples[i], want[i]) {
			t.Fatalf("row %d = %v, want %v", i, r.Tuples[i], want[i])
		}
	}
}

func TestContains(t *testing.T) {
	r := mkRel(t)
	if !r.Contains(NewTuple(NewInt(2), NewString("bob"))) {
		t.Error("Contains missed an existing tuple")
	}
	if r.Contains(NewTuple(NewInt(9), NewString("zed"))) {
		t.Error("Contains found a missing tuple")
	}
}

func TestSameSetSameBag(t *testing.T) {
	a := mkRel(t)
	b := mkRel(t)
	if !a.SameSet(b) || !a.SameBag(b) {
		t.Error("identical relations must compare equal")
	}
	b.Distinct()
	if !a.SameSet(b) {
		t.Error("SameSet ignores duplicates")
	}
	if a.SameBag(b) {
		t.Error("SameBag must notice duplicate count change")
	}
	c := NewRelation(a.Schema)
	c.Append(NewTuple(NewInt(9), NewString("zed")))
	if a.SameSet(c) || a.SameBag(c) {
		t.Error("different contents must not compare equal")
	}
	// Same length, different multiset.
	d := NewRelation(a.Schema)
	d.Append(a.Tuples[0], a.Tuples[0], a.Tuples[0], a.Tuples[0])
	if a.SameBag(d) {
		t.Error("same length but different multiplicities must differ")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := mkRel(t)
	b := a.Clone()
	b.Tuples[0][0] = NewInt(42)
	if a.Tuples[0][0].Int() == 42 {
		t.Error("Clone must deep-copy tuples")
	}
}

func TestRelationString(t *testing.T) {
	r := NewRelation(MustSchema("id", "INT", "name", "VARCHAR"))
	r.Append(NewTuple(NewInt(1), NewString("ann")))
	s := r.String()
	if !strings.Contains(s, "id") || !strings.Contains(s, "ann") {
		t.Errorf("String() = %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("expected header, rule and one row; got %d lines", len(lines))
	}
}

func TestRelationSize(t *testing.T) {
	r := mkRel(t)
	if r.Size() <= 0 {
		t.Error("relation size must be positive")
	}
}
