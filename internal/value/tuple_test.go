package value

import (
	"math/rand"
	"testing"
)

func TestTupleBasics(t *testing.T) {
	tp := NewTuple(NewInt(1), NewString("x"))
	if len(tp) != 2 {
		t.Fatalf("arity = %d", len(tp))
	}
	cl := tp.Clone()
	cl[0] = NewInt(99)
	if tp[0].Int() != 1 {
		t.Error("Clone must not alias the original")
	}
}

func TestInts(t *testing.T) {
	tp := Ints(3, 1, 4)
	if len(tp) != 3 || tp[2].Int() != 4 {
		t.Fatalf("Ints built %v", tp)
	}
}

func TestProjectConcat(t *testing.T) {
	tp := Ints(10, 20, 30)
	p := tp.Project([]int{2, 0})
	if p[0].Int() != 30 || p[1].Int() != 10 {
		t.Errorf("Project gave %v", p)
	}
	q := tp.Concat(Ints(40))
	if len(q) != 4 || q[3].Int() != 40 {
		t.Errorf("Concat gave %v", q)
	}
	// Concat must not share the original's backing array.
	q[0] = NewInt(-1)
	if tp[0].Int() != 10 {
		t.Error("Concat aliased its input")
	}
}

func TestCompareTuples(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Ints(1, 2), Ints(1, 2), 0},
		{Ints(1, 2), Ints(1, 3), -1},
		{Ints(2), Ints(1, 9), 1},
		{Ints(1), Ints(1, 0), -1}, // prefix sorts first
		{Ints(1, 0), Ints(1), 1},
	}
	for _, c := range cases {
		if got := CompareTuples(c.a, c.b); got != c.want {
			t.Errorf("CompareTuples(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if !EqualTuples(Ints(5, 6), Ints(5, 6)) {
		t.Error("EqualTuples failed on equal tuples")
	}
	if EqualTuples(Ints(5), Ints(5, 6)) {
		t.Error("EqualTuples failed on different arity")
	}
}

func TestCompareOn(t *testing.T) {
	a := NewTuple(NewInt(1), NewString("z"), NewInt(5))
	b := NewTuple(NewInt(1), NewString("a"), NewInt(9))
	if CompareOn(a, b, []int{0}) != 0 {
		t.Error("equal on column 0")
	}
	if CompareOn(a, b, []int{1}) != 1 {
		t.Error("z > a on column 1")
	}
	if CompareOn(a, b, []int{0, 2}) != -1 {
		t.Error("5 < 9 on columns {0,2}")
	}
}

func TestTupleString(t *testing.T) {
	tp := NewTuple(NewInt(1), NewString("ab"))
	if got := tp.String(); got != "(1, 'ab')" {
		t.Errorf("String() = %q", got)
	}
}

func TestKeyUniquenessProperty(t *testing.T) {
	// Distinct tuples must produce distinct keys; equal tuples equal keys.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		n := r.Intn(4)
		a := make(Tuple, n)
		b := make(Tuple, n)
		for j := 0; j < n; j++ {
			a[j] = randomValue(r)
			b[j] = randomValue(r)
		}
		ka, kb := a.Key(), b.Key()
		if EqualTuples(a, b) {
			// Note: int/float equal values encode differently, so only
			// same-encoding tuples are required to share keys. Check the
			// strict case: a tuple always equals its clone.
			if a.Clone().Key() != ka {
				t.Fatalf("clone key differs for %v", a)
			}
		} else if ka == kb {
			t.Fatalf("distinct tuples share a key: %v vs %v", a, b)
		}
	}
}

func TestKeyOn(t *testing.T) {
	a := NewTuple(NewInt(1), NewString("x"), NewInt(2))
	b := NewTuple(NewInt(1), NewString("y"), NewInt(2))
	if a.KeyOn([]int{0, 2}) != b.KeyOn([]int{0, 2}) {
		t.Error("KeyOn should agree on shared columns")
	}
	if a.KeyOn([]int{1}) == b.KeyOn([]int{1}) {
		t.Error("KeyOn should differ on differing columns")
	}
}

func TestTupleSize(t *testing.T) {
	small := Ints(1).Size()
	big := Ints(1, 2, 3, 4).Size()
	if big <= small {
		t.Error("wider tuples must report larger sizes")
	}
}
