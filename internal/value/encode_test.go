package value

import (
	"math/rand"
	"testing"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []Value{
		Null,
		NewBool(true), NewBool(false),
		NewInt(0), NewInt(1), NewInt(-1), NewInt(1<<62 - 1), NewInt(-(1 << 62)),
		NewFloat(0), NewFloat(3.14159), NewFloat(-2.5e300),
		NewString(""), NewString("hello"), NewString("unicode: héllo"),
	}
	for _, v := range vals {
		buf := AppendValue(nil, v)
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(buf) {
			t.Errorf("decode %v consumed %d of %d bytes", v, n, len(buf))
		}
		if got.Kind() != v.Kind() || Compare(got, v) != 0 {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		v := randomValue(r)
		got, _, err := DecodeValue(AppendValue(nil, v))
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if got.Kind() != v.Kind() || Compare(got, v) != 0 {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestTupleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		n := r.Intn(6)
		tp := make(Tuple, n)
		for j := range tp {
			tp[j] = randomValue(r)
		}
		got, used, err := DecodeTuple(AppendTuple(nil, tp))
		if err != nil {
			t.Fatalf("decode %v: %v", tp, err)
		}
		if used != len(AppendTuple(nil, tp)) {
			t.Errorf("partial consume on %v", tp)
		}
		if !EqualTuples(got, tp) {
			t.Fatalf("round trip %v -> %v", tp, got)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ts := make([]Tuple, 100)
	for i := range ts {
		ts[i] = NewTuple(randomValue(r), randomValue(r))
	}
	got, err := DecodeTuples(EncodeTuples(ts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("decoded %d tuples, want %d", len(got), len(ts))
	}
	for i := range ts {
		if !EqualTuples(got[i], ts[i]) {
			t.Fatalf("tuple %d mismatch: %v vs %v", i, got[i], ts[i])
		}
	}
	// Empty batch round trips too.
	got, err = DecodeTuples(EncodeTuples(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("empty batch round trip: %v, %v", got, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty buffer should error")
	}
	if _, _, err := DecodeValue([]byte{byte(KindInt), 1, 2}); err == nil {
		t.Error("truncated int should error")
	}
	if _, _, err := DecodeValue([]byte{byte(KindFloat)}); err == nil {
		t.Error("truncated float should error")
	}
	if _, _, err := DecodeValue([]byte{byte(KindBool)}); err == nil {
		t.Error("truncated bool should error")
	}
	if _, _, err := DecodeValue([]byte{byte(KindString), 0, 0}); err == nil {
		t.Error("truncated string header should error")
	}
	if _, _, err := DecodeValue([]byte{byte(KindString), 0, 0, 0, 9, 'a'}); err == nil {
		t.Error("truncated string body should error")
	}
	if _, _, err := DecodeValue([]byte{200}); err == nil {
		t.Error("bad kind tag should error")
	}
	if _, _, err := DecodeTuple([]byte{0}); err == nil {
		t.Error("truncated tuple header should error")
	}
	if _, _, err := DecodeTuple([]byte{0, 2, byte(KindInt)}); err == nil {
		t.Error("truncated tuple body should error")
	}
	if _, err := DecodeTuples([]byte{0}); err == nil {
		t.Error("truncated batch header should error")
	}
	if _, err := DecodeTuples([]byte{0, 0, 0, 1}); err == nil {
		t.Error("truncated batch body should error")
	}
}

func TestHashTupleConsistency(t *testing.T) {
	a := NewTuple(NewInt(7), NewString("x"), NewFloat(2.5))
	b := NewTuple(NewInt(7), NewString("y"), NewFloat(2.5))
	if HashTuple(a, []int{0, 2}) != HashTuple(b, []int{0, 2}) {
		t.Error("hash on shared columns should match")
	}
	// Cross-kind numeric equality hashes identically (hash-partitioning
	// correctness for joins between int and float keys).
	c := NewTuple(NewFloat(7))
	d := NewTuple(NewInt(7))
	if HashTuple(c, []int{0}) != HashTuple(d, []int{0}) {
		t.Error("int 7 and float 7.0 must hash-partition identically")
	}
}
