package value

import "testing"

func TestSchemaEncodeRoundTrip(t *testing.T) {
	cases := []*Schema{
		NewSchema(),
		MustSchema("id", "INTEGER"),
		MustSchema("id", "INTEGER", "name", "VARCHAR", "ok", "BOOLEAN", "score", "FLOAT"),
		NewSchema(Column{Name: "", Kind: KindNull}, Column{Name: "dup", Kind: KindInt}, Column{Name: "dup", Kind: KindString}),
	}
	for i, in := range cases {
		buf := AppendSchema(nil, in)
		out, n, err := DecodeSchema(buf)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(buf))
		}
		if !EqualSchema(in, out) {
			t.Fatalf("case %d: %v != %v", i, in, out)
		}
	}
}

func TestRelationEncodeRoundTrip(t *testing.T) {
	rel := NewRelation(MustSchema("id", "INTEGER", "dept", "VARCHAR"))
	rel.Append(
		NewTuple(NewInt(1), NewString("eng")),
		NewTuple(NewInt(2), Null),
		NewTuple(NewInt(-7), NewString("")),
	)
	buf := EncodeRelation(rel)
	out, n, err := DecodeRelation(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !EqualSchema(rel.Schema, out.Schema) || out.Len() != rel.Len() || !out.SameSet(rel) {
		t.Fatalf("round trip mismatch: %v", out)
	}

	// Empty relation.
	empty := NewRelation(MustSchema("x", "FLOAT"))
	out, _, err = DecodeRelation(EncodeRelation(empty))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty relation decoded %d tuples", out.Len())
	}
}

func TestRelationDecodeMalformed(t *testing.T) {
	rel := NewRelation(MustSchema("id", "INTEGER"))
	rel.Append(NewTuple(NewInt(1)))
	full := EncodeRelation(rel)
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeRelation(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Arity mismatch: a 2-column tuple under a 1-column schema.
	wide := NewRelation(rel.Schema)
	wide.Tuples = []Tuple{NewTuple(NewInt(1), NewInt(2))}
	if _, _, err := DecodeRelation(EncodeRelation(wide)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// Bad schema kind tag.
	bad := append([]byte{}, full...)
	bad[2] = 0x7f // first column's kind byte
	if _, _, err := DecodeRelation(bad); err == nil {
		t.Fatal("bad schema kind accepted")
	}
}
