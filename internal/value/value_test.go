package value

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindBool:   "BOOLEAN",
		KindInt:    "INTEGER",
		KindFloat:  "FLOAT",
		KindString: "VARCHAR",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind rendered %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.Kind() != KindInt || v.Int() != 42 {
		t.Errorf("NewInt round trip failed: %v", v)
	}
	if v := NewInt(-7); v.Int() != -7 {
		t.Errorf("negative int round trip failed: %v", v)
	}
	if v := NewFloat(3.25); v.Kind() != KindFloat || v.Float() != 3.25 {
		t.Errorf("NewFloat round trip failed: %v", v)
	}
	if v := NewString("hello"); v.Kind() != KindString || v.Str() != "hello" {
		t.Errorf("NewString round trip failed: %v", v)
	}
	if v := NewBool(true); v.Kind() != KindBool || !v.Bool() {
		t.Errorf("NewBool(true) round trip failed: %v", v)
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false) should be false")
	}
	var zero Value
	if !zero.IsNull() || zero.Kind() != KindNull {
		t.Errorf("zero Value must be NULL")
	}
}

func TestIntToFloatConversion(t *testing.T) {
	if got := NewInt(5).Float(); got != 5.0 {
		t.Errorf("NewInt(5).Float() = %v, want 5", got)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(17), "17"},
		{NewInt(-4), "-4"},
		{NewFloat(2.5), "2.5"},
		{NewString("abc"), "abc"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() of %v = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
	if got := NewString("x").Quoted(); got != "'x'" {
		t.Errorf("Quoted string = %q", got)
	}
	if got := NewInt(3).Quoted(); got != "3" {
		t.Errorf("Quoted int = %q", got)
	}
}

func TestCompareSameKind(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareCrossKind(t *testing.T) {
	if Compare(NewInt(2), NewFloat(2.0)) != 0 {
		t.Error("int 2 should equal float 2.0")
	}
	if Compare(NewInt(2), NewFloat(2.5)) != -1 {
		t.Error("int 2 should be < float 2.5")
	}
	if Compare(NewFloat(3.5), NewInt(3)) != 1 {
		t.Error("float 3.5 should be > int 3")
	}
	// NULL sorts first.
	if Compare(Null, NewInt(-1<<62)) != -1 {
		t.Error("NULL should sort before any int")
	}
	if Compare(NewString(""), Null) != 1 {
		t.Error("anything should sort after NULL")
	}
	// Non-numeric cross-kind comparisons order by kind, totally.
	if Compare(NewBool(true), NewString("a")) >= 0 {
		t.Error("bool should order before string by kind")
	}
}

func TestCompareNaN(t *testing.T) {
	nan := NewFloat(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN should equal itself for ordering purposes")
	}
	if Compare(nan, NewFloat(0)) != -1 {
		t.Error("NaN should sort before numbers")
	}
	if Compare(NewFloat(0), nan) != 1 {
		t.Error("numbers should sort after NaN")
	}
}

func TestEqualAndLess(t *testing.T) {
	if !Equal(NewInt(1), NewFloat(1)) {
		t.Error("numeric cross-kind equality")
	}
	if Equal(Null, NewInt(0)) {
		t.Error("NULL is not equal to 0")
	}
	if !Equal(Null, Null) {
		t.Error("NULL equals NULL in our set semantics")
	}
	if !Less(NewInt(1), NewInt(2)) || Less(NewInt(2), NewInt(1)) {
		t.Error("Less is inconsistent")
	}
}

func TestComparable(t *testing.T) {
	if !Comparable(NewInt(1), NewFloat(2)) {
		t.Error("int and float should be comparable")
	}
	if !Comparable(Null, NewString("x")) {
		t.Error("NULL comparable with everything")
	}
	if Comparable(NewBool(true), NewString("x")) {
		t.Error("bool and string should not be comparable")
	}
}

func TestArithmetic(t *testing.T) {
	check := func(v Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if !Equal(v, want) {
			t.Fatalf("got %v, want %v", v, want)
		}
	}
	v, err := Add(NewInt(2), NewInt(3))
	check(v, err, NewInt(5))
	v, err = Add(NewInt(2), NewFloat(0.5))
	check(v, err, NewFloat(2.5))
	v, err = Add(NewString("ab"), NewString("cd"))
	check(v, err, NewString("abcd"))
	v, err = Sub(NewInt(7), NewInt(3))
	check(v, err, NewInt(4))
	v, err = Mul(NewInt(6), NewInt(7))
	check(v, err, NewInt(42))
	v, err = Mul(NewFloat(1.5), NewInt(2))
	check(v, err, NewFloat(3))
	v, err = Div(NewInt(7), NewInt(2))
	check(v, err, NewInt(3))
	v, err = Div(NewFloat(7), NewInt(2))
	check(v, err, NewFloat(3.5))
	v, err = Mod(NewInt(7), NewInt(3))
	check(v, err, NewInt(1))
	v, err = Neg(NewInt(5))
	check(v, err, NewInt(-5))
	v, err = Neg(NewFloat(2.5))
	check(v, err, NewFloat(-2.5))
}

func TestArithmeticNullPropagation(t *testing.T) {
	for _, op := range []func(a, b Value) (Value, error){Add, Sub, Mul, Div, Mod} {
		v, err := op(Null, NewInt(1))
		if err != nil || !v.IsNull() {
			t.Errorf("op(NULL, 1) = %v, %v; want NULL, nil", v, err)
		}
		v, err = op(NewInt(1), Null)
		if err != nil || !v.IsNull() {
			t.Errorf("op(1, NULL) = %v, %v; want NULL, nil", v, err)
		}
	}
	if v, err := Neg(Null); err != nil || !v.IsNull() {
		t.Errorf("Neg(NULL) = %v, %v; want NULL, nil", v, err)
	}
}

func TestArithmeticErrors(t *testing.T) {
	if _, err := Add(NewBool(true), NewInt(1)); err == nil {
		t.Error("bool + int should error")
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("integer division by zero should error")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero should error")
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Error("mod by zero should error")
	}
	if _, err := Mod(NewFloat(1), NewFloat(1)); err == nil {
		t.Error("float mod should error")
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("negating a string should error")
	}
	if _, err := Sub(NewString("a"), NewString("b")); err == nil {
		t.Error("string subtraction should error")
	}
	if _, err := Mul(NewString("a"), NewInt(2)); err == nil {
		t.Error("string multiplication should error")
	}
}

func TestSize(t *testing.T) {
	if NewInt(1).Size() <= 0 {
		t.Error("int size must be positive")
	}
	short, long := NewString("a").Size(), NewString("aaaaaaaaaa").Size()
	if long <= short {
		t.Error("longer strings must report larger sizes")
	}
}

// randomValue generates an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewBool(r.Intn(2) == 1)
	case 2:
		return NewInt(r.Int63n(2000) - 1000)
	case 3:
		return NewFloat(float64(r.Int63n(2000)-1000) / 4)
	default:
		letters := []byte("abcdefgh")
		n := r.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return NewString(string(b))
	}
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		// Antisymmetry.
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated for %v vs %v", a, b)
		}
		// Reflexivity.
		if Compare(a, a) != 0 {
			t.Fatalf("Compare(%v,%v) != 0", a, a)
		}
		// Transitivity of <=.
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v <= %v <= %v but %v > %v", a, b, b, a, c)
		}
	}
}

func TestHashEqualImpliesSameHashProperty(t *testing.T) {
	// Equal values must hash equal, including int/float cross-kind equality.
	f := func(n int64) bool {
		n %= 1 << 40 // keep within exact float64 range
		return Hash64(NewInt(n)) == Hash64(NewFloat(float64(n)))
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a, b := randomValue(r), randomValue(r)
		if Equal(a, b) && Hash64(a) != Hash64(b) {
			t.Fatalf("equal values hash differently: %v vs %v", a, b)
		}
	}
}
