package value

import "testing"

func batchSchema() *Schema {
	return MustSchema("id", "INT", "name", "VARCHAR", "score", "FLOAT", "active", "BOOL")
}

func batchTuples() []Tuple {
	return []Tuple{
		NewTuple(NewInt(1), NewString("ann"), NewFloat(1.5), NewBool(true)),
		NewTuple(NewInt(2), NewString(""), NewFloat(-2), NewBool(false)),
		NewTuple(Null, NewString("cat"), Null, NewBool(true)),
		NewTuple(NewInt(4), Null, NewFloat(4.25), Null),
		NewTuple(NewInt(5), NewString("eve"), NewFloat(0), NewBool(false)),
	}
}

// TestColumnarBatchRoundTrip: transposing tuples to columns and
// materializing back is the identity, NULLs included.
func TestColumnarBatchRoundTrip(t *testing.T) {
	schema := batchSchema()
	tuples := batchTuples()
	b := NewBatchFrom(schema, tuples)
	if b == nil {
		t.Fatal("NewBatchFrom declined a uniform relation")
	}
	if b.Len() != len(tuples) || b.Rows != len(tuples) {
		t.Fatalf("Len = %d, Rows = %d", b.Len(), b.Rows)
	}
	out := b.Materialize()
	for i, want := range tuples {
		if !EqualTuples(out.Tuples[i], want) {
			t.Errorf("row %d: %v != %v", i, out.Tuples[i], want)
		}
	}
	// Scalar access agrees too.
	if got := b.Value(1, 0); got.Str() != "ann" {
		t.Errorf("Value(1,0) = %v", got)
	}
	if !b.Cols[0].IsNull(2) || b.Cols[1].IsNull(2) {
		t.Error("NULL positions wrong")
	}
}

// TestNewBatchFromDeclines: heterogeneous columns and short tuples make
// the transposition refuse (callers fall back to the row path).
func TestNewBatchFromDeclines(t *testing.T) {
	s := MustSchema("x", "INT")
	if b := NewBatchFrom(s, []Tuple{Ints(1), {NewString("oops")}}); b != nil {
		t.Error("heterogeneous column accepted")
	}
	s2 := MustSchema("x", "INT", "y", "INT")
	if b := NewBatchFrom(s2, []Tuple{Ints(1, 2), Ints(3)}); b != nil {
		t.Error("short tuple accepted")
	}
	// All-NULL column with no declared kind is fine.
	s3 := NewSchema(Column{Name: "n", Kind: KindNull})
	b := NewBatchFrom(s3, []Tuple{{Null}, {Null}})
	if b == nil || !b.Cols[0].IsNull(0) {
		t.Error("all-NULL column rejected")
	}
}

// TestBatchSelAndProject: a selection vector narrows the logical rows
// without copying, and Project remaps columns sharing the vectors.
func TestBatchSelAndProject(t *testing.T) {
	b := NewBatchFrom(batchSchema(), batchTuples())
	b.Sel = []int32{0, 2, 4}
	if b.Len() != 3 || b.Row(1) != 2 {
		t.Fatalf("Len = %d, Row(1) = %d", b.Len(), b.Row(1))
	}
	out := b.Materialize()
	if out.Len() != 3 || out.Tuples[2][0].Int() != 5 {
		t.Fatalf("materialized selection = %v", out.Tuples)
	}
	p := b.Project([]int{2, 0}, MustSchema("score", "FLOAT", "id", "INT"))
	if p.Cols[0] != b.Cols[2] || p.Cols[1] != b.Cols[0] {
		t.Error("projection copied vectors instead of sharing")
	}
	if p.Len() != 3 || p.Value(1, 2).Int() != 5 {
		t.Errorf("projected batch = %v", p.Materialize().Tuples)
	}
}

// TestHashRowMatchesHashTuple pins the bucket-alignment invariant: a
// columnar hash of any key subset equals the row tuple hash, so a
// vectorized exchange routes every row to the same bucket as the row
// executor.
func TestHashRowMatchesHashTuple(t *testing.T) {
	tuples := batchTuples()
	b := NewBatchFrom(batchSchema(), tuples)
	for _, idxs := range [][]int{{0}, {1}, {0, 2}, {3, 1, 0}} {
		for r, tup := range tuples {
			if got, want := b.HashRow(r, idxs), HashTuple(tup, idxs); got != want {
				t.Errorf("row %d cols %v: HashRow %x != HashTuple %x", r, idxs, got, want)
			}
		}
	}
}

// TestGather: the column-wise copy preserves values and NULLs in index
// order.
func TestGather(t *testing.T) {
	b := NewBatchFrom(batchSchema(), batchTuples())
	g := b.Cols[0].Gather([]int32{4, 2, 0})
	if g.Len() != 3 || g.I[0] != 5 || !g.IsNull(1) || g.I[2] != 1 {
		t.Errorf("gathered = %+v", g)
	}
	s := b.Cols[1].Gather([]int32{3, 0})
	if !s.IsNull(0) || s.S[1] != "ann" {
		t.Errorf("gathered strings = %+v", s)
	}
}

// TestConcatBatches: selected rows of several batches concatenate into
// one dense batch, preserving order and NULLs.
func TestConcatBatches(t *testing.T) {
	schema := batchSchema()
	tuples := batchTuples()
	b1 := NewBatchFrom(schema, tuples)
	b1.Sel = append(GetSel(), 1, 3)
	b2 := NewBatchFrom(schema, tuples)
	b3 := NewBatchFrom(schema, tuples[:0])
	out := ConcatBatches(schema, []*Batch{b1, b3, b2})
	if out.Sel != nil || out.Len() != 7 {
		t.Fatalf("concat = %d rows (sel %v)", out.Len(), out.Sel)
	}
	want := append([]Tuple{tuples[1], tuples[3]}, tuples...)
	got := out.Materialize()
	for i := range want {
		if !EqualTuples(got.Tuples[i], want[i]) {
			t.Errorf("row %d: %v != %v", i, got.Tuples[i], want[i])
		}
	}
	if b1.Sel != nil {
		t.Error("consumed input kept its selection vector")
	}
}

// TestBatchSizeMatchesMaterialize: the columnar size estimate equals
// what the materialized relation reports, dense and selected.
func TestBatchSizeMatchesMaterialize(t *testing.T) {
	b := NewBatchFrom(batchSchema(), batchTuples())
	if got, want := b.Size(), b.Materialize().Size(); got != want {
		t.Errorf("dense Size = %d, materialized = %d", got, want)
	}
	b.Sel = []int32{0, 3}
	if got, want := b.Size(), b.Materialize().Size(); got != want {
		t.Errorf("selected Size = %d, materialized = %d", got, want)
	}
}

// TestSelPool: buffers round-trip through the pool empty, and oversized
// buffers are dropped rather than pinned.
func TestSelPool(t *testing.T) {
	s := GetSel()
	if len(s) != 0 {
		t.Fatalf("pooled sel not empty: %d", len(s))
	}
	s = append(s, 1, 2, 3)
	PutSel(s)
	if s2 := GetSel(); len(s2) != 0 {
		t.Errorf("reused sel not reset: %d", len(s2))
	}
	PutSel(make([]int32, 0, maxPooledSel+1)) // must not panic; silently dropped
	PutSel(nil)                              // zero-cap: dropped
}
