// Package value defines the typed scalar values, schemas, tuples and
// relations that every layer of the PRISMA reproduction is built on.
//
// PRISMA is a main-memory machine: tuples are kept as compact in-memory
// arrays of Value, not serialized pages. A Value is a small tagged union
// so that slices of them stay allocation-free for the common kinds.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The kinds supported by the PRISMA type system. PRISMAlog and the SQL
// subset both map onto these.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a scalar database value: NULL, boolean, 64-bit integer, 64-bit
// float or string. The zero Value is NULL.
type Value struct {
	kind Kind
	num  uint64 // int64 bits, float64 bits, or 0/1 for bool
	str  string
}

// Null is the NULL value.
var Null = Value{}

// NewBool returns a boolean Value.
func NewBool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// NewInt returns an integer Value.
func NewInt(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// NewFloat returns a float Value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, num: math.Float64bits(f)} }

// NewString returns a string Value.
func NewString(s string) Value { return Value{kind: KindString, str: s} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload. It is valid only for KindBool.
func (v Value) Bool() bool { return v.num != 0 }

// Int returns the integer payload. It is valid only for KindInt.
func (v Value) Int() int64 { return int64(v.num) }

// Float returns the float payload. For KindInt it converts; otherwise it is
// valid only for KindFloat.
func (v Value) Float() float64 {
	if v.kind == KindInt {
		return float64(int64(v.num))
	}
	return math.Float64frombits(v.num)
}

// Str returns the string payload. It is valid only for KindString.
func (v Value) Str() string { return v.str }

// String renders v for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case KindString:
		return v.str
	default:
		return fmt.Sprintf("<bad kind %d>", v.kind)
	}
}

// Quoted renders v as a literal: strings are single-quoted, others as String.
func (v Value) Quoted() string {
	if v.kind == KindString {
		return "'" + v.str + "'"
	}
	return v.String()
}

// numericKinds reports whether both values are numeric (int or float).
func numericKinds(a, b Value) bool {
	return (a.kind == KindInt || a.kind == KindFloat) && (b.kind == KindInt || b.kind == KindFloat)
}

// Comparable reports whether a and b can be ordered against each other.
// Values of the same kind are always comparable; ints and floats are
// mutually comparable; NULL is comparable with everything (sorting first).
func Comparable(a, b Value) bool {
	if a.kind == b.kind || a.kind == KindNull || b.kind == KindNull {
		return true
	}
	return numericKinds(a, b)
}

// Compare orders a against b: -1, 0 or +1. NULL sorts before everything.
// Ints and floats compare numerically; otherwise kinds must match (a
// mismatch orders by kind so that sorting heterogeneous data is total).
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.kind != b.kind {
		if numericKinds(a, b) {
			return cmpFloat(a.Float(), b.Float())
		}
		// Total order across kinds keeps sorts stable on mixed data.
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindBool:
		ab, bb := a.num, b.num
		switch {
		case ab == bb:
			return 0
		case ab < bb:
			return -1
		default:
			return 1
		}
	case KindInt:
		ai, bi := int64(a.num), int64(b.num)
		switch {
		case ai == bi:
			return 0
		case ai < bi:
			return -1
		default:
			return 1
		}
	case KindFloat:
		return cmpFloat(a.Float(), b.Float())
	case KindString:
		switch {
		case a.str == b.str:
			return 0
		case a.str < b.str:
			return -1
		default:
			return 1
		}
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a == b:
		return 0
	case a < b:
		return -1
	case a > b:
		return 1
	// NaN sorts before all numbers, after nothing.
	case math.IsNaN(a) && math.IsNaN(b):
		return 0
	case math.IsNaN(a):
		return -1
	default:
		return 1
	}
}

// Equal reports whether a and b are the same value (numeric cross-kind
// equality included).
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return a.kind == b.kind
	}
	return Compare(a, b) == 0
}

// Less reports whether a orders strictly before b.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// Add returns a+b for numeric values; string concatenation for strings.
func Add(a, b Value) (Value, error) {
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return NewInt(int64(a.num) + int64(b.num)), nil
	case numericKinds(a, b):
		return NewFloat(a.Float() + b.Float()), nil
	case a.kind == KindString && b.kind == KindString:
		return NewString(a.str + b.str), nil
	case a.kind == KindNull || b.kind == KindNull:
		return Null, nil
	}
	return Null, fmt.Errorf("value: cannot add %s and %s", a.kind, b.kind)
}

// Sub returns a-b for numeric values.
func Sub(a, b Value) (Value, error) {
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return NewInt(int64(a.num) - int64(b.num)), nil
	case numericKinds(a, b):
		return NewFloat(a.Float() - b.Float()), nil
	case a.kind == KindNull || b.kind == KindNull:
		return Null, nil
	}
	return Null, fmt.Errorf("value: cannot subtract %s and %s", a.kind, b.kind)
}

// Mul returns a*b for numeric values.
func Mul(a, b Value) (Value, error) {
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return NewInt(int64(a.num) * int64(b.num)), nil
	case numericKinds(a, b):
		return NewFloat(a.Float() * b.Float()), nil
	case a.kind == KindNull || b.kind == KindNull:
		return Null, nil
	}
	return Null, fmt.Errorf("value: cannot multiply %s and %s", a.kind, b.kind)
}

// Div returns a/b for numeric values. Integer division truncates; division
// by zero is an error.
func Div(a, b Value) (Value, error) {
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		if b.num == 0 {
			return Null, fmt.Errorf("value: integer division by zero")
		}
		return NewInt(int64(a.num) / int64(b.num)), nil
	case numericKinds(a, b):
		if b.Float() == 0 {
			return Null, fmt.Errorf("value: division by zero")
		}
		return NewFloat(a.Float() / b.Float()), nil
	case a.kind == KindNull || b.kind == KindNull:
		return Null, nil
	}
	return Null, fmt.Errorf("value: cannot divide %s and %s", a.kind, b.kind)
}

// Mod returns a%b for integer values.
func Mod(a, b Value) (Value, error) {
	if a.kind == KindInt && b.kind == KindInt {
		if b.num == 0 {
			return Null, fmt.Errorf("value: modulo by zero")
		}
		return NewInt(int64(a.num) % int64(b.num)), nil
	}
	if a.kind == KindNull || b.kind == KindNull {
		return Null, nil
	}
	return Null, fmt.Errorf("value: cannot take %s mod %s", a.kind, b.kind)
}

// Neg returns -a for numeric values.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindInt:
		return NewInt(-int64(a.num)), nil
	case KindFloat:
		return NewFloat(-a.Float()), nil
	case KindNull:
		return Null, nil
	}
	return Null, fmt.Errorf("value: cannot negate %s", a.kind)
}

// Size returns the approximate in-memory footprint of v in bytes. The
// machine model uses this for the 16 MB/PE memory accounting.
func (v Value) Size() int {
	// tag + payload word + string header & bytes.
	const base = 16
	if v.kind == KindString {
		return base + len(v.str)
	}
	return base
}
