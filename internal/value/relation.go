package value

import (
	"sort"
	"strings"
)

// Relation is an in-memory multiset of tuples with a schema. It is the
// unit of data exchanged between the engine layers: query results,
// intermediate results and fragment snapshots are all Relations.
type Relation struct {
	Schema *Schema
	Tuples []Tuple
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(s *Schema) *Relation { return &Relation{Schema: s} }

// Append adds tuples to the relation.
func (r *Relation) Append(ts ...Tuple) { r.Tuples = append(r.Tuples, ts...) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema, Tuples: make([]Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// Sort orders the relation lexicographically in place (canonical form for
// comparisons in tests and set semantics).
func (r *Relation) Sort() {
	sort.Slice(r.Tuples, func(i, j int) bool {
		return CompareTuples(r.Tuples[i], r.Tuples[j]) < 0
	})
}

// SortOn orders the relation on the given columns in place; desc[i]
// reverses the i-th sort column. desc may be nil (all ascending).
func (r *Relation) SortOn(idxs []int, desc []bool) {
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		return CompareOnDesc(r.Tuples[i], r.Tuples[j], idxs, desc) < 0
	})
}

// Distinct removes duplicate tuples in place, preserving first-seen order.
func (r *Relation) Distinct() {
	seen := make(map[string]struct{}, len(r.Tuples))
	out := r.Tuples[:0]
	for _, t := range r.Tuples {
		k := t.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, t)
	}
	r.Tuples = out
}

// Contains reports whether the relation holds a tuple equal to t.
func (r *Relation) Contains(t Tuple) bool {
	for _, u := range r.Tuples {
		if EqualTuples(t, u) {
			return true
		}
	}
	return false
}

// SameSet reports whether r and other contain the same set of tuples
// (duplicates collapsed). Used heavily in tests to compare plans.
func (r *Relation) SameSet(other *Relation) bool {
	a := map[string]struct{}{}
	for _, t := range r.Tuples {
		a[t.Key()] = struct{}{}
	}
	b := map[string]struct{}{}
	for _, t := range other.Tuples {
		b[t.Key()] = struct{}{}
	}
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// SameBag reports whether r and other contain the same multiset of tuples.
func (r *Relation) SameBag(other *Relation) bool {
	if len(r.Tuples) != len(other.Tuples) {
		return false
	}
	counts := map[string]int{}
	for _, t := range r.Tuples {
		counts[t.Key()]++
	}
	for _, t := range other.Tuples {
		k := t.Key()
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// Size returns the approximate in-memory footprint in bytes.
func (r *Relation) Size() int {
	n := 0
	for _, t := range r.Tuples {
		n += t.Size()
	}
	return n
}

// String renders the relation as an aligned text table (used by the shell
// and examples).
func (r *Relation) String() string {
	cols := r.Schema.Columns()
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(r.Tuples))
	for ti, t := range r.Tuples {
		row := make([]string, len(cols))
		for i := range cols {
			if i < len(t) {
				row[i] = t[i].String()
			}
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		cells[ti] = row
	}
	var b strings.Builder
	writeRow := func(fields []string) {
		for i, f := range fields {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(f)
			for p := len(f); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	writeRow(names)
	rules := make([]string, len(cols))
	for i := range cols {
		rules[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rules)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
