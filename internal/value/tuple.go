package value

import "strings"

// Tuple is one row: a fixed-width slice of values matching some Schema.
type Tuple []Value

// NewTuple builds a tuple from values.
func NewTuple(vs ...Value) Tuple { return Tuple(vs) }

// Ints builds an all-integer tuple; handy in tests and generators.
func Ints(vs ...int64) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = NewInt(v)
	}
	return t
}

// Clone returns a copy of t with its own backing array.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Project returns the tuple restricted to the given column positions.
func (t Tuple) Project(idxs []int) Tuple {
	out := make(Tuple, len(idxs))
	for i, ix := range idxs {
		out[i] = t[ix]
	}
	return out
}

// Concat returns t followed by u in a fresh tuple (join output).
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	return append(out, u...)
}

// CompareTuples orders a against b lexicographically.
func CompareTuples(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) == len(b):
		return 0
	case len(a) < len(b):
		return -1
	default:
		return 1
	}
}

// EqualTuples reports whether a and b hold equal values positionally.
func EqualTuples(a, b Tuple) bool { return CompareTuples(a, b) == 0 }

// CompareOn orders a against b on the given column positions.
func CompareOn(a, b Tuple, idxs []int) int {
	for _, ix := range idxs {
		if c := Compare(a[ix], b[ix]); c != 0 {
			return c
		}
	}
	return 0
}

// CompareOnDesc orders a against b on the given column positions with
// per-column direction (desc[i] reverses key i; nil = all ascending).
// This is THE sort-key comparator: Relation.SortOn and the k-way run
// merge both use it, so per-partition sorts and the coordinator merge
// can never disagree on ordering semantics.
func CompareOnDesc(a, b Tuple, idxs []int, desc []bool) int {
	for k, ix := range idxs {
		c := Compare(a[ix], b[ix])
		if c == 0 {
			continue
		}
		if desc != nil && k < len(desc) && desc[k] {
			return -c
		}
		return c
	}
	return 0
}

// Size returns the approximate in-memory footprint of t in bytes.
func (t Tuple) Size() int {
	n := 24 // slice header
	for _, v := range t {
		n += v.Size()
	}
	return n
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.Quoted())
	}
	b.WriteByte(')')
	return b.String()
}

// Key returns a canonical string key for the whole tuple, used by
// duplicate elimination and set operators. It uses the binary encoding,
// so distinct values always produce distinct keys.
func (t Tuple) Key() string { return string(AppendTuple(nil, t)) }

// AppendKeyOn appends the canonical key encoding of the given column
// positions to buf and returns it — the allocation-free form of KeyOn
// for callers that reuse a key buffer across tuples (grouping loops
// probe their map with string(buf), which does not allocate).
func (t Tuple) AppendKeyOn(buf []byte, idxs []int) []byte {
	for _, ix := range idxs {
		buf = AppendValue(buf, t[ix])
	}
	return buf
}

// KeyOn returns a canonical string key for the given column positions.
func (t Tuple) KeyOn(idxs []int) string {
	return string(t.AppendKeyOn(nil, idxs))
}
