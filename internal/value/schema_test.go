package value

import "testing"

func TestNewSchemaAndLookup(t *testing.T) {
	s := NewSchema(Column{"id", KindInt}, Column{"name", KindString}, Column{"score", KindFloat})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Column(1).Name != "name" || s.Column(1).Kind != KindString {
		t.Errorf("Column(1) = %+v", s.Column(1))
	}
	if ix := s.Index("score"); ix != 2 {
		t.Errorf("Index(score) = %d, want 2", ix)
	}
	if ix := s.Index("SCORE"); ix != 2 {
		t.Errorf("case-insensitive Index(SCORE) = %d, want 2", ix)
	}
	if ix := s.Index("missing"); ix != -1 {
		t.Errorf("Index(missing) = %d, want -1", ix)
	}
}

func TestMustSchema(t *testing.T) {
	s := MustSchema("id", "INT", "name", "VARCHAR")
	if s.Len() != 2 || s.Column(0).Kind != KindInt || s.Column(1).Kind != KindString {
		t.Fatalf("MustSchema built %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSchema with odd args should panic")
		}
	}()
	MustSchema("lonely")
}

func TestMustSchemaBadType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema with bad type should panic")
		}
	}()
	MustSchema("x", "BLOB")
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "BIGINT": KindInt,
		"float": KindFloat, "REAL": KindFloat, "double": KindFloat,
		"varchar": KindString, "TEXT": KindString, " string ": KindString,
		"bool": KindBool, "BOOLEAN": KindBool,
	}
	for name, want := range cases {
		k, err := ParseKind(name)
		if err != nil || k != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, k, err, want)
		}
	}
	if _, err := ParseKind("nonsense"); err == nil {
		t.Error("ParseKind(nonsense) should error")
	}
}

func TestQualifiedLookup(t *testing.T) {
	s := NewSchema(Column{"emp.id", KindInt}, Column{"dept.id", KindInt}, Column{"name", KindString})
	if ix := s.Index("emp.id"); ix != 0 {
		t.Errorf("Index(emp.id) = %d, want 0", ix)
	}
	if ix := s.Index("dept.id"); ix != 1 {
		t.Errorf("Index(dept.id) = %d, want 1", ix)
	}
	// Unqualified "id" matches the first qualified column holding id.
	if ix := s.Index("id"); ix != 0 {
		t.Errorf("Index(id) = %d, want 0", ix)
	}
	// Qualified name against unqualified column.
	s2 := NewSchema(Column{"id", KindInt})
	if ix := s2.Index("emp.id"); ix != 0 {
		t.Errorf("Index(emp.id) over plain schema = %d, want 0", ix)
	}
}

func TestSchemaProjectConcatRename(t *testing.T) {
	s := MustSchema("a", "INT", "b", "VARCHAR", "c", "FLOAT")
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Column(0).Name != "c" || p.Column(1).Name != "a" {
		t.Errorf("Project gave %v", p)
	}
	u := MustSchema("d", "INT")
	cat := s.Concat(u)
	if cat.Len() != 4 || cat.Column(3).Name != "d" {
		t.Errorf("Concat gave %v", cat)
	}
	r := s.Rename("t")
	if r.Column(0).Name != "t.a" {
		t.Errorf("Rename gave %v", r)
	}
	// Renaming an already-qualified schema replaces the qualifier.
	rr := r.Rename("u")
	if rr.Column(0).Name != "u.a" {
		t.Errorf("second Rename gave %v", rr)
	}
}

func TestEqualSchema(t *testing.T) {
	a := MustSchema("x", "INT", "y", "VARCHAR")
	b := MustSchema("p", "INT", "q", "VARCHAR")
	c := MustSchema("p", "INT", "q", "INT")
	d := MustSchema("p", "INT")
	if !EqualSchema(a, b) {
		t.Error("same kinds should be union-compatible regardless of names")
	}
	if EqualSchema(a, c) || EqualSchema(a, d) {
		t.Error("kind or arity mismatch must not be compatible")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema("id", "INT", "name", "VARCHAR")
	want := "(id INTEGER, name VARCHAR)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDuplicateColumnNames(t *testing.T) {
	s := NewSchema(Column{"x", KindInt}, Column{"x", KindString})
	if ix := s.Index("x"); ix != 0 {
		t.Errorf("duplicate name lookup should find first; got %d", ix)
	}
}
