package server

import (
	"errors"
	"net"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/wire"
)

// prepSchema loads a small table for the prepared-statement tests.
func prepSchema(t *testing.T, c *client.Client) {
	t.Helper()
	if _, err := c.Exec(`CREATE TABLE acct (id INT, region VARCHAR, balance INT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO acct VALUES (1, 'eu', 100), (2, 'us', 200), (3, 'apac', 300)`); err != nil {
		t.Fatal(err)
	}
}

func TestPreparedRoundTrip(t *testing.T) {
	addr := startServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	prepSchema(t, c)

	stmt, err := c.Prepare(`SELECT * FROM acct WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams = %d", stmt.NumParams())
	}
	for id := 1; id <= 3; id++ {
		rel, err := stmt.Query(id)
		if err != nil {
			t.Fatalf("id=%d: %v", id, err)
		}
		if rel.Len() != 1 || rel.Tuples[0][2].Int() != int64(id*100) {
			t.Fatalf("id=%d: %v", id, rel.Tuples)
		}
	}

	// Prepared DML with mixed Go scalar args.
	up, err := c.Prepare(`UPDATE acct SET balance = balance + ? WHERE region = ?`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := up.Exec(5, "eu")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}

	// Close releases the statement; further executes get a clean
	// statement error and the connection survives.
	if err := stmt.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = stmt.Query(1)
	var se *client.ServerError
	if !errors.As(err, &se) || !strings.Contains(err.Error(), "unknown or closed") {
		t.Fatalf("exec after close: %v", err)
	}
	if _, err := c.Query(`SELECT * FROM acct WHERE id = 2`); err != nil {
		t.Fatalf("connection unusable after stale-id error: %v", err)
	}
}

func TestBindExecUnknownID(t *testing.T) {
	addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	handshake(t, conn)

	// A well-formed BindExec for an id that never existed is a
	// statement error, not a connection drop.
	if err := wire.WriteFrame(conn, wire.TypeBindExec, wire.EncodeBindExec(9999, nil)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeError || !strings.Contains(string(payload), "unknown or closed prepared statement id 9999") {
		t.Fatalf("frame 0x%02x %q", typ, payload)
	}
	// The connection is still fully usable.
	if err := wire.WriteFrame(conn, wire.TypeExec, []byte(`CREATE TABLE ok (x INT)`)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeResult {
		t.Fatalf("after stale-id error: frame 0x%02x %q", typ, payload)
	}
}

func TestPreparedLRUEviction(t *testing.T) {
	addr := startServer(t, Config{MaxPrepared: 2})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	prepSchema(t, c)

	s1, err := c.Prepare(`SELECT * FROM acct WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Prepare(`SELECT * FROM acct WHERE balance > ?`)
	if err != nil {
		t.Fatal(err)
	}
	// Touch s1 so s2 is the least recently used, then overflow the cap.
	if _, err := s1.Query(1); err != nil {
		t.Fatal(err)
	}
	s3, err := c.Prepare(`SELECT * FROM acct WHERE region = ?`)
	if err != nil {
		t.Fatal(err)
	}
	// s2 was evicted; s1 and s3 still work.
	if _, err := s2.Query(150); err == nil || !strings.Contains(err.Error(), "unknown or closed") {
		t.Fatalf("evicted statement executed: %v", err)
	}
	if _, err := s1.Query(2); err != nil {
		t.Fatalf("survivor s1: %v", err)
	}
	if _, err := s3.Query("us"); err != nil {
		t.Fatalf("survivor s3: %v", err)
	}
}

func TestPrepareBadSQL(t *testing.T) {
	addr := startServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var se *client.ServerError
	if _, err := c.Prepare(`SELEC nope`); !errors.As(err, &se) {
		t.Fatalf("bad SQL prepare: %v", err)
	}
	// Connection stays usable.
	if _, err := c.Exec(`CREATE TABLE t (x INT)`); err != nil {
		t.Fatalf("after prepare error: %v", err)
	}
}

// TestMalformedBindExec: a structurally invalid BindExec payload is a
// protocol violation — the server explains in an Error frame, then
// closes.
func TestMalformedBindExec(t *testing.T) {
	addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	handshake(t, conn)
	if err := wire.WriteFrame(conn, wire.TypeBindExec, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatalf("want Error frame before close, got %v", err)
	}
	if typ != wire.TypeError || !strings.Contains(string(payload), "BindExec") {
		t.Fatalf("frame 0x%02x %q", typ, payload)
	}
	expectClosed(t, conn)
}
