package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/value"
	"repro/internal/wire"
)

// bigEngine builds an engine holding table `big` (id INT, payload
// VARCHAR) with rows rows over 4 fragments; each encoded tuple is ~60
// bytes, so a few thousand rows outgrow small frame limits.
func bigEngine(t *testing.T, rows int) *core.Engine {
	return bigEngineWide(t, rows, 40)
}

// bigEngineWide controls the payload width, for tests that must exceed
// kernel socket buffering so a stream provably stays in flight.
func bigEngineWide(t *testing.T, rows, padLen int) *core.Engine {
	t.Helper()
	eng, err := core.New(core.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	schema := value.MustSchema("id", "INT", "payload", "VARCHAR")
	if err := eng.CreateTable("big", schema,
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 4}, []int{0}); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("p", padLen)
	tuples := make([]value.Tuple, rows)
	for i := range tuples {
		tuples[i] = value.NewTuple(value.NewInt(int64(i)), value.NewString(pad))
	}
	if err := eng.LoadTable("big", tuples); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestStreamLargerThanMaxFrame is the streaming regression the frame
// cap used to impose: a SELECT whose result exceeds MaxFrame fails
// materialized but succeeds streamed, chunk by chunk.
func TestStreamLargerThanMaxFrame(t *testing.T) {
	const rows = 4000 // ~240 KiB encoded, well past the 64 KiB limit
	eng := bigEngine(t, rows)
	addr := startServer(t, Config{Engine: eng, MaxFrame: 64 << 10})
	c, err := client.Dial(addr, client.Options{MaxFrame: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Materialized delivery refuses the oversized result...
	_, err = c.Exec(`SELECT * FROM big`)
	var se *client.ServerError
	if !errors.As(err, &se) || !strings.Contains(err.Error(), "exceeds frame limit") {
		t.Fatalf("Exec err = %v, want frame-limit server error", err)
	}

	// ...while Query streams it through the same connection.
	rel, err := c.Query(`SELECT * FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != rows {
		t.Fatalf("streamed %d rows, want %d", rel.Len(), rows)
	}
	if got := c.MaxFrameObserved(); got > 64<<10 {
		t.Fatalf("peak frame %d exceeds the 64 KiB limit", got)
	}
	// The connection survived both statements.
	if _, err := c.Exec(`SELECT COUNT(*) AS n FROM big WHERE id = 1`); err != nil {
		t.Fatalf("connection unusable after streaming: %v", err)
	}
}

// TestSmallClientMaxFrame: a client whose own frame limit is far below
// the server's defaults must still stream large results — the client
// clamps its chunk request to fit its limit, and the server honors it.
func TestSmallClientMaxFrame(t *testing.T) {
	const rows = 4000
	eng := bigEngine(t, rows)
	addr := startServer(t, Config{Engine: eng}) // server default 8 MiB / 256 KiB chunks
	c, err := client.Dial(addr, client.Options{MaxFrame: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rel, err := c.Query(`SELECT * FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != rows {
		t.Fatalf("streamed %d rows, want %d", rel.Len(), rows)
	}
	if got := c.MaxFrameObserved(); got > 32<<10 {
		t.Fatalf("peak frame %d exceeds the client's 32 KiB limit", got)
	}
}

// TestRowsIterator exercises the Next/Scan/Err/Close surface, the End
// frame, and non-relation statements through QueryStream.
func TestRowsIterator(t *testing.T) {
	eng := bigEngine(t, 500)
	addr := startServer(t, Config{Engine: eng})
	c, err := client.Dial(addr, client.Options{ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows, err := c.QueryStream(`SELECT id, payload FROM big WHERE id < 100`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Schema() == nil || rows.Schema().Len() != 2 {
		t.Fatalf("schema = %v", rows.Schema())
	}
	if rows.Plan() == "" {
		t.Fatal("missing plan in result head")
	}
	seen := map[int64]bool{}
	for rows.Next() {
		var id int64
		var payload string
		if err := rows.Scan(&id, &payload); err != nil {
			t.Fatal(err)
		}
		if id < 0 || id >= 100 || seen[id] {
			t.Fatalf("unexpected or duplicate id %d", id)
		}
		seen[id] = true
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 {
		t.Fatalf("iterated %d rows, want 100", len(seen))
	}
	end := rows.End()
	if end == nil || end.Rows != 100 {
		t.Fatalf("end = %+v, want 100 rows", end)
	}
	if end.WallTime <= 0 {
		t.Fatalf("end.WallTime = %v", end.WallTime)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// DDL through the streaming entry point behaves like Exec.
	dres, err := c.QueryStream(`CREATE TABLE other (x INT, PRIMARY KEY (x))`)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Next() {
		t.Fatal("DDL produced tuples")
	}
	if dres.Result() == nil || !strings.Contains(dres.Result().Msg, "created") {
		t.Fatalf("DDL result = %+v", dres.Result())
	}
	// Statement errors surface as ServerError with the connection usable.
	if _, err := c.QueryStream(`SELECT * FROM nonexistent`); err == nil {
		t.Fatal("streaming a bad statement succeeded")
	} else {
		var se *client.ServerError
		if !errors.As(err, &se) {
			t.Fatalf("err = %v, want ServerError", err)
		}
	}
	if _, err := c.Query(`SELECT COUNT(*) AS n FROM big`); err != nil {
		t.Fatalf("connection unusable after statement error: %v", err)
	}
}

// TestRowsCloseEarlyKeepsConnectionUsable drains an abandoned stream so
// the next statement on the connection still works.
func TestRowsCloseEarlyKeepsConnectionUsable(t *testing.T) {
	eng := bigEngine(t, 5000)
	addr := startServer(t, Config{Engine: eng})
	c, err := client.Dial(addr, client.Options{ChunkRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.QueryStream(`SELECT * FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	rel, err := c.Query(`SELECT * FROM big WHERE id = 7`)
	if err != nil {
		t.Fatalf("statement after early close: %v", err)
	}
	if rel.Len() != 1 {
		t.Fatalf("rows = %d", rel.Len())
	}
}

// TestStreamClientDisconnectMidStream drops the connection while the
// server is mid-stream; the per-connection cursor must abort its
// autocommit transaction so the fragment S-locks are released and a
// writer can proceed.
func TestStreamClientDisconnectMidStream(t *testing.T) {
	eng := bigEngine(t, 20000)
	addr := startServer(t, Config{Engine: eng})
	c, err := client.Dial(addr, client.Options{ChunkRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.QueryStream(`SELECT * FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	// Hard disconnect mid-stream (Close works while the stream owns the
	// connection).
	c.Close()

	// A writer needs X locks on the scanned fragments: it only returns
	// once the server noticed the disconnect and released the stream's
	// locks.
	w, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	done := make(chan error, 1)
	go func() {
		res, err := w.Exec(`UPDATE big SET payload = 'y' WHERE id = 3`)
		if err == nil && res.Affected != 1 {
			err = fmt.Errorf("affected = %d", res.Affected)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after disconnect: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer still blocked: stream locks were not released after disconnect")
	}
}

// TestStreamDisconnectReleasesSnapshotPin drops the connection while a
// stream holds an MVCC snapshot pin; session teardown must settle the
// cursor so the garbage-collection horizon resumes tracking the
// watermark instead of staying stuck at the dead stream's snapshot.
func TestStreamDisconnectReleasesSnapshotPin(t *testing.T) {
	eng := bigEngine(t, 20000)
	addr := startServer(t, Config{Engine: eng})
	c, err := client.Dial(addr, client.Options{ChunkRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.QueryStream(`SELECT * FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	pinned := eng.Txns().Horizon() // the stream's snapshot holds it here
	c.Close()                      // abnormal teardown, stream still open

	w, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := w.Exec(`UPDATE big SET payload = 'z' WHERE id = 7`); err != nil {
			t.Fatalf("write after disconnect: %v", err)
		}
		if h := eng.Txns().Horizon(); h > pinned {
			break // pin released: horizon follows the new commits again
		}
		if time.Now().After(deadline) {
			t.Fatalf("horizon stuck at %d: disconnected stream's snapshot pin never released", pinned)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamServerShutdownMidStream closes the server while a stream is
// in flight: Close must not hang on the streaming connection, and the
// client must observe an error rather than a silent truncation.
func TestStreamServerShutdownMidStream(t *testing.T) {
	// ~20 MB of result: far beyond what kernel socket buffers can hold,
	// so the server is necessarily still writing when Close lands.
	eng := bigEngineWide(t, 100000, 200)
	srv, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	c, err := client.Dial(l.Addr().String(), client.Options{ChunkRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.QueryStream(`SELECT * FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}

	closeDone := make(chan error, 1)
	go func() { closeDone <- srv.Close() }()
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server Close hung on a mid-stream connection")
	}
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}

	// Drain: the stream must terminate with an error, not look complete.
	n := 1
	for rows.Next() {
		n++
	}
	if n == 100000 && rows.End() != nil {
		t.Fatal("stream reported clean completion across a server shutdown")
	}
	if rows.Err() == nil && rows.End() == nil {
		t.Fatal("interrupted stream reports neither error nor completion")
	}
	rows.Close()

	// Every open transaction was aborted by the connection teardown.
	if got := eng.Txns().ActiveCount(); got != 0 {
		t.Fatalf("%d transactions still active after shutdown", got)
	}
}

// TestConcurrentStreams runs 16 streaming scans at once (with -race in
// CI) plus a writer, verifying every stream sees a consistent full
// scan and all locks drain.
func TestConcurrentStreams(t *testing.T) {
	const rows = 8000
	eng := bigEngine(t, rows)
	addr := startServer(t, Config{Engine: eng, MaxConns: 32})

	var wg sync.WaitGroup
	errCh := make(chan error, 17)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{ChunkRows: 256})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			rs, err := c.QueryStream(`SELECT * FROM big`)
			if err != nil {
				errCh <- err
				return
			}
			n := 0
			for rs.Next() {
				n++
			}
			if err := rs.Err(); err != nil {
				errCh <- fmt.Errorf("stream %d: %w", i, err)
				return
			}
			if n != rows {
				errCh <- fmt.Errorf("stream %d saw %d rows, want %d", i, n, rows)
			}
		}(i)
	}
	// A writer interleaves point updates: S/X conflicts must serialize,
	// never wedge.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := client.Dial(addr)
		if err != nil {
			errCh <- err
			return
		}
		defer c.Close()
		for k := 0; k < 20; k++ {
			if _, err := c.Exec(fmt.Sprintf(`UPDATE big SET payload = 'w' WHERE id = %d`, k)); err != nil {
				errCh <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got := eng.Txns().ActiveCount(); got != 0 {
		t.Fatalf("%d transactions still active after concurrent streams", got)
	}
}

// benchClient dials a server over a point-query table.
func benchClient(b *testing.B) *client.Client {
	b.Helper()
	eng, err := core.New(core.Config{NumPEs: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	schema := value.MustSchema("id", "INT", "payload", "VARCHAR")
	if err := eng.CreateTable("big", schema,
		&fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 4}, []int{0}); err != nil {
		b.Fatal(err)
	}
	tuples := make([]value.Tuple, 4000)
	for i := range tuples {
		tuples[i] = value.NewTuple(value.NewInt(int64(i)), value.NewString("pppppppppp"))
	}
	if err := eng.LoadTable("big", tuples); err != nil {
		b.Fatal(err)
	}
	srv, err := New(Config{Engine: eng})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() { srv.Serve(l); close(done) }()
	b.Cleanup(func() { srv.Close(); <-done })
	c, err := client.Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkPointQueryMaterialized is the single-Result-frame baseline.
func BenchmarkPointQueryMaterialized(b *testing.B) {
	c := benchClient(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Exec(fmt.Sprintf(`SELECT * FROM big WHERE id = %d`, i%4000))
		if err != nil {
			b.Fatal(err)
		}
		if res.Rel.Len() != 1 {
			b.Fatalf("rows = %d", res.Rel.Len())
		}
	}
}

// BenchmarkPointQueryStreamed is the same lookup over the chunked
// protocol — the per-statement streaming overhead must stay negligible.
func BenchmarkPointQueryStreamed(b *testing.B) {
	c := benchClient(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := c.Query(fmt.Sprintf(`SELECT * FROM big WHERE id = %d`, i%4000))
		if err != nil {
			b.Fatal(err)
		}
		if rel.Len() != 1 {
			b.Fatalf("rows = %d", rel.Len())
		}
	}
}

// TestExecStreamMalformedFrame confirms a garbled ExecStream header is
// a protocol violation that closes the connection.
func TestExecStreamMalformedFrame(t *testing.T) {
	addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.TypeHello, wire.EncodeHello()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn, 0); err != nil || typ != wire.TypeHelloOK {
		t.Fatalf("handshake: typ=%#x err=%v", typ, err)
	}
	// 4 bytes is shorter than the 8-byte ExecStream header.
	if err := wire.WriteFrame(conn, wire.TypeExecStream, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn, 0)
	if err != nil || typ != wire.TypeError {
		t.Fatalf("reply: typ=%#x err=%v", typ, err)
	}
	if !strings.Contains(string(payload), "ExecStream") {
		t.Fatalf("error = %q", payload)
	}
	// The server closes after a protocol violation.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := wire.ReadFrame(conn, 0); err == nil {
		t.Fatal("connection still open after protocol violation")
	}
}
