package server

import (
	"errors"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/fault"
	"repro/internal/wire"
)

// TestRetryableOverWire pins the retry contract end-to-end: a
// server-side lock-wait deadline crosses the wire as a coded Error
// frame, client.IsRetryable recognizes it, and client.Retry recovers
// once the lock holder lets go.
func TestRetryableOverWire(t *testing.T) {
	addr := startServer(t, Config{StatementTimeout: 50 * time.Millisecond})
	holder, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	mustExec(t, holder, `CREATE TABLE acct (id INT, balance INT, PRIMARY KEY (id))`)
	mustExec(t, holder, `INSERT INTO acct VALUES (1, 100)`)
	mustExec(t, holder, `BEGIN`)
	mustExec(t, holder, `UPDATE acct SET balance = 1 WHERE id = 1`)

	blocked, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer blocked.Close()
	_, err = blocked.Exec(`UPDATE acct SET balance = 2 WHERE id = 1`)
	if err == nil {
		t.Fatal("update under a held X lock must time out")
	}
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *client.ServerError", err, err)
	}
	if se.Code != wire.ErrCodeDeadline {
		t.Errorf("error code = 0x%02x, want deadline (0x%02x): %v", se.Code, wire.ErrCodeDeadline, se)
	}
	if !client.IsRetryable(err) {
		t.Errorf("deadline error must be retryable: %v", err)
	}
	// The connection survived the statement error.
	checkBalance(t, blocked, 1, 100)

	// Retry wins once the holder releases: free the lock from a third
	// goroutine partway through the backoff schedule.
	go func() {
		time.Sleep(20 * time.Millisecond)
		holder.Exec(`ROLLBACK`)
	}()
	err = client.RetryPolicy{MaxAttempts: 50, BaseBackoff: 5 * time.Millisecond}.Do(func() error {
		_, err := blocked.Exec(`UPDATE acct SET balance = 2 WHERE id = 1`)
		return err
	})
	if err != nil {
		t.Fatalf("retry never succeeded: %v", err)
	}
	checkBalance(t, blocked, 1, 2)
}

// TestFrameWriteFaultDropsConnNotCommit: an injected reply-write failure
// on COMMIT kills the connection AFTER the commit executed — the client
// must see a non-retryable transport error (re-running could double the
// transfer), and a fresh connection must see the committed state.
func TestFrameWriteFaultDropsConnNotCommit(t *testing.T) {
	t.Cleanup(func() {
		fault.DisarmAll()
		fault.ClearCrash()
	})
	addr := startServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustExec(t, c, `CREATE TABLE acct (id INT, balance INT, PRIMARY KEY (id))`)
	mustExec(t, c, `INSERT INTO acct VALUES (1, 100)`)
	mustExec(t, c, `BEGIN`)
	mustExec(t, c, `UPDATE acct SET balance = 777 WHERE id = 1`)

	if err := fault.Arm("server.frame.write", fault.Spec{Mode: fault.Error, N: 1}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Exec(`COMMIT`)
	if err == nil {
		t.Fatal("COMMIT with a dropped reply must surface an error")
	}
	if client.IsRetryable(err) {
		t.Errorf("a lost reply is indeterminate, never retryable: %v", err)
	}
	// The connection is gone for good.
	if _, err := c.Exec(`SELECT * FROM acct`); err == nil {
		t.Error("connection must be broken after a dropped reply")
	}
	fault.DisarmAll()

	// The commit itself landed before the reply write failed: the value
	// is visible on a fresh connection — exactly why the client must not
	// blindly re-run it.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	checkBalance(t, c2, 1, 777)
}

// TestClientReadDeadlineBreaksSilentServer: with a statement timeout
// armed, a server that stops answering entirely trips the client-side
// read deadline instead of hanging the caller forever.
func TestClientReadDeadlineBreaksSilentServer(t *testing.T) {
	t.Cleanup(func() {
		fault.DisarmAll()
		fault.ClearCrash()
	})
	addr := startServer(t, Config{})
	c, err := client.Dial(addr, client.Options{StatementTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustExec(t, c, `CREATE TABLE t (id INT, PRIMARY KEY (id))`)

	// Delay the next reply write far past the client's read deadline
	// (2x timeout + 1s): the client abandons the connection.
	if err := fault.Arm("server.frame.write", fault.Spec{Mode: fault.Delay, N: 1, Delay: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Exec(`INSERT INTO t VALUES (1)`)
	if err == nil {
		t.Fatal("read past the deadline must fail")
	}
	if elapsed := time.Since(start); elapsed >= 3*time.Second {
		t.Errorf("client waited %v — the deadline never fired", elapsed)
	}
	if client.IsRetryable(err) {
		t.Errorf("a deadline-broken connection is indeterminate: %v", err)
	}
}
