package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/wire"
)

// startServer brings up an engine and a server on a loopback port,
// returning the dial address. Everything shuts down with the test.
func startServer(t *testing.T, cfg Config) string {
	t.Helper()
	if cfg.Engine == nil {
		eng, err := core.New(core.Config{NumPEs: 8})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		cfg.Engine = eng
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return l.Addr().String()
}

func TestEndToEndStatements(t *testing.T) {
	addr := startServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Exec(`CREATE TABLE emp (id INT, dept VARCHAR, salary INT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Msg, "created") {
		t.Fatalf("create msg = %q", res.Msg)
	}
	res, err = c.Exec(`INSERT INTO emp VALUES (1, 'eng', 100), (2, 'ops', 80), (3, 'eng', 120)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 3 {
		t.Fatalf("affected = %d", res.Affected)
	}
	rel, err := c.Query(`SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("groups = %d\n%v", rel.Len(), rel)
	}
	// Statement errors keep the connection usable.
	if _, err := c.Query(`SELECT * FROM nope`); err == nil {
		t.Fatal("query on missing table succeeded")
	} else if _, ok := err.(*client.ServerError); !ok {
		t.Fatalf("err = %T %v, want *client.ServerError", err, err)
	}
	if _, err := c.Query(`SELECT * FROM emp WHERE id = 2`); err != nil {
		t.Fatalf("connection unusable after statement error: %v", err)
	}
}

// TestExplainOverWire pins EXPLAIN end-to-end: the plan arrives as a
// one-column relation over both the materialized (Exec) and streaming
// (Query → ExecStream) request paths, and shows the optimizer's join
// method annotations.
func TestExplainOverWire(t *testing.T) {
	addr := startServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE emp (id INT, dept VARCHAR, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`CREATE TABLE dept (name VARCHAR, budget INT, PRIMARY KEY (name))`); err != nil {
		t.Fatal(err)
	}
	const q = `EXPLAIN SELECT e.id FROM emp e JOIN dept d ON e.dept = d.name`
	for _, path := range []string{"exec", "stream"} {
		var rel *value.Relation
		if path == "exec" {
			res, err := c.Exec(q)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			rel = res.Rel
		} else {
			rel, err = c.Query(q)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		}
		if rel == nil || rel.Len() == 0 || rel.Schema.Len() != 1 {
			t.Fatalf("%s: EXPLAIN relation = %v", path, rel)
		}
		var all strings.Builder
		for _, row := range rel.Tuples {
			all.WriteString(row[0].Str())
			all.WriteByte('\n')
		}
		if !strings.Contains(all.String(), "Join(") || !strings.Contains(all.String(), "method=") {
			t.Fatalf("%s: plan output missing join annotations:\n%s", path, all.String())
		}
	}
}

func TestDatalogOverWire(t *testing.T) {
	eng, err := core.New(core.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	addr := startServer(t, Config{Engine: eng})

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE edge (src INT, dst INT) FRAGMENT BY HASH(src) INTO 2 FRAGMENTS`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO edge VALUES (0, 1), (1, 2), (2, 3)`); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterRules(`
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
	`); err != nil {
		t.Fatal(err)
	}
	rel, err := c.Datalog(`reach(0, X)`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("answers = %d\n%v", rel.Len(), rel)
	}
}

// TestTransactionAcrossStatements exercises the per-session transaction
// state the protocol must preserve between frames.
func TestTransactionAcrossStatements(t *testing.T) {
	addr := startServer(t, Config{})
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	mustExec(t, c1, `CREATE TABLE acct (id INT, balance INT, PRIMARY KEY (id)) FRAGMENT BY HASH(id) INTO 2 FRAGMENTS`)
	mustExec(t, c1, `INSERT INTO acct VALUES (1, 100), (2, 100)`)

	// Rollback undoes both updates.
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c1, `UPDATE acct SET balance = balance - 40 WHERE id = 1`)
	mustExec(t, c1, `UPDATE acct SET balance = balance + 40 WHERE id = 2`)
	if err := c1.Rollback(); err != nil {
		t.Fatal(err)
	}
	checkBalance(t, c2, 1, 100)

	// Commit makes both visible to the other connection.
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c1, `UPDATE acct SET balance = balance - 40 WHERE id = 1`)
	mustExec(t, c1, `UPDATE acct SET balance = balance + 40 WHERE id = 2`)
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}
	checkBalance(t, c2, 1, 60)
	checkBalance(t, c2, 2, 140)

	// Nested BEGIN is a statement error, not a connection killer.
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Begin(); err == nil {
		t.Fatal("nested BEGIN succeeded")
	}
	if err := c1.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestDisconnectAbortsTransaction drops a connection mid-transaction and
// checks the server aborts it, releasing its locks for other sessions.
func TestDisconnectAbortsTransaction(t *testing.T) {
	eng, err := core.New(core.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	addr := l.Addr().String()

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, c1, `CREATE TABLE acct (id INT, balance INT, PRIMARY KEY (id)) FRAGMENT BY HASH(id) INTO 2 FRAGMENTS`)
	mustExec(t, c1, `INSERT INTO acct VALUES (1, 100)`)
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c1, `UPDATE acct SET balance = 0 WHERE id = 1`)
	c1.Close() // vanish mid-transaction, X lock still held

	// The server must notice, abort, and free the fragment for others.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c2.Exec(`UPDATE acct SET balance = balance + 1 WHERE id = 1`)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fragment still locked after disconnect: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkBalance(t, c2, 1, 101) // the aborted UPDATE never landed
	if n := eng.Txns().ActiveCount(); n != 0 {
		t.Fatalf("%d transactions still active after disconnect", n)
	}
}

// ---------- raw-socket protocol abuse ----------

// rawDial opens a plain TCP connection without the client library.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	return conn
}

func TestHandshakeRequired(t *testing.T) {
	addr := startServer(t, Config{})
	conn := rawDial(t, addr)
	// First frame is Exec, not Hello.
	if err := wire.WriteFrame(conn, wire.TypeExec, []byte("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeError || !strings.Contains(string(payload), "Hello") {
		t.Fatalf("reply = %#x %q", typ, payload)
	}
	expectClosed(t, conn)
}

func TestBadMagicRejected(t *testing.T) {
	addr := startServer(t, Config{})
	conn := rawDial(t, addr)
	if err := wire.WriteFrame(conn, wire.TypeHello, []byte("EVIL\x01")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeError || !strings.Contains(string(payload), "magic") {
		t.Fatalf("reply = %#x %q", typ, payload)
	}
	expectClosed(t, conn)
}

func TestVersionMismatchRejected(t *testing.T) {
	addr := startServer(t, Config{})
	conn := rawDial(t, addr)
	if err := wire.WriteFrame(conn, wire.TypeHello, []byte(wire.Magic+"\x63")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeError || !strings.Contains(string(payload), "version") {
		t.Fatalf("reply = %#x %q", typ, payload)
	}
	expectClosed(t, conn)
}

func TestOversizedFrameRejected(t *testing.T) {
	addr := startServer(t, Config{MaxFrame: 1024})
	conn := rawDial(t, addr)
	// Declare a payload far over the server's limit; send only the
	// header — the server must refuse from the length alone.
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], 1<<30)
	hdr[4] = wire.TypeHello
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeError || !strings.Contains(string(payload), "size limit") {
		t.Fatalf("reply = %#x %q", typ, payload)
	}
	expectClosed(t, conn)
}

func TestUnknownFrameTypeAfterHandshake(t *testing.T) {
	addr := startServer(t, Config{})
	conn := rawDial(t, addr)
	handshake(t, conn)
	if err := wire.WriteFrame(conn, 0x7e, []byte("??")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeError || !strings.Contains(string(payload), "unknown frame type") {
		t.Fatalf("reply = %#x %q", typ, payload)
	}
	expectClosed(t, conn)
}

func TestTruncatedFrameThenDisconnect(t *testing.T) {
	addr := startServer(t, Config{})
	conn := rawDial(t, addr)
	handshake(t, conn)
	// Declare 100 bytes, send 3, vanish. The server must just drop the
	// connection — and keep serving others.
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], 100)
	hdr[4] = wire.TypeExec
	conn.Write(hdr[:])
	conn.Write([]byte("SEL"))
	conn.Close()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE t (x INT)`); err != nil {
		t.Fatalf("server unhealthy after truncated frame: %v", err)
	}
}

// TestMidQueryDisconnect sends a statement and slams the connection shut
// before the reply; the server must finish cleanly and drain the
// connection count.
func TestMidQueryDisconnect(t *testing.T) {
	eng, err := core.New(core.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	addr := l.Addr().String()

	seed, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, seed, `CREATE TABLE emp (id INT, salary INT, PRIMARY KEY (id)) FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`)
	mustExec(t, seed, `INSERT INTO emp VALUES (1, 10), (2, 20), (3, 30), (4, 40)`)
	seed.Close()

	for i := 0; i < 8; i++ {
		conn := rawDial(t, addr)
		handshake(t, conn)
		if err := wire.WriteFrame(conn, wire.TypeExec,
			[]byte(`SELECT id, SUM(salary) AS s FROM emp GROUP BY id`)); err != nil {
			t.Fatal(err)
		}
		conn.Close() // gone before (or while) the result is written
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.ConnCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d connections still tracked after disconnects", srv.ConnCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the engine still answers.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rel, err := c.Query(`SELECT COUNT(*) AS n FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("count rows = %d", rel.Len())
	}
}

func TestConnectionLimit(t *testing.T) {
	addr := startServer(t, Config{MaxConns: 2})
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if _, err := client.Dial(addr); err == nil {
		t.Fatal("third connection admitted over MaxConns=2")
	} else if !strings.Contains(err.Error(), "connection limit") {
		t.Fatalf("refusal err = %v", err)
	} else if !client.IsRetryable(err) {
		// The refusal is a coded overload: back off and redial.
		t.Fatalf("connection refusal must be coded retryable: %v", err)
	}

	// Freeing a slot re-admits.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c4, err := client.Dial(addr)
		if err == nil {
			c4.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGracefulShutdown(t *testing.T) {
	eng, err := core.New(core.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	c, err := client.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, `CREATE TABLE t (x INT)`)

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if _, err := c.Exec(`SELECT * FROM t`); err == nil {
		t.Fatal("statement succeeded on closed server")
	}
	if _, err := client.Dial(l.Addr().String()); err == nil {
		t.Fatal("dial succeeded on closed server")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestConcurrentWireClients runs a small mixed workload from many
// connections at once — the network-layer sibling of core's stress test.
func TestConcurrentWireClients(t *testing.T) {
	addr := startServer(t, Config{MaxConns: 32})
	seed, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, seed, `CREATE TABLE acct (id INT, balance INT, PRIMARY KEY (id)) FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`)
	for i := 0; i < 32; i++ {
		mustExec(t, seed, fmt.Sprintf(`INSERT INTO acct VALUES (%d, 100)`, i))
	}
	seed.Close()

	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for i := 0; i < 15; i++ {
				id := (w*7 + i) % 32
				switch i % 3 {
				case 0:
					if _, err := c.Query(fmt.Sprintf(`SELECT * FROM acct WHERE id = %d`, id)); err != nil {
						errc <- fmt.Errorf("worker %d select: %w", w, err)
						return
					}
				case 1:
					if _, err := c.Exec(fmt.Sprintf(`UPDATE acct SET balance = balance + 1 WHERE id = %d`, id)); err != nil {
						if !strings.Contains(err.Error(), "deadlock") {
							errc <- fmt.Errorf("worker %d update: %w", w, err)
							return
						}
					}
				case 2:
					if _, err := c.Query(`SELECT COUNT(*) AS n FROM acct`); err != nil {
						errc <- fmt.Errorf("worker %d count: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// ---------- helpers ----------

func handshake(t *testing.T, conn net.Conn) {
	t.Helper()
	if err := wire.WriteFrame(conn, wire.TypeHello, wire.EncodeHello()); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeHelloOK {
		t.Fatalf("handshake reply = %#x", typ)
	}
}

// expectClosed asserts the server hung up on us.
func expectClosed(t *testing.T, conn net.Conn) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err != io.EOF {
		t.Fatalf("read after protocol error = %v, want EOF", err)
	}
}

func mustExec(t *testing.T, c *client.Client, sql string) {
	t.Helper()
	if _, err := c.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

func checkBalance(t *testing.T, c *client.Client, id, want int) {
	t.Helper()
	rel, err := c.Query(fmt.Sprintf(`SELECT balance FROM acct WHERE id = %d`, id))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("acct %d: %d rows", id, rel.Len())
	}
	if got := rel.Tuples[0][0].Int(); int(got) != want {
		t.Fatalf("acct %d balance = %d, want %d", id, got, want)
	}
}
