package server

import (
	"repro/internal/core"
	"repro/internal/lru"
)

// stmtRegistry holds one connection's prepared statements under an LRU
// cap: preparing beyond the cap silently evicts the least-recently-used
// statement (a BindExec naming it then gets a clean statement error). A
// registry is only touched by its connection's serve loop, so it needs
// no locking.
type stmtRegistry struct {
	nextID uint32
	stmts  *lru.Cache[uint32, *core.PreparedStmt]
}

func newStmtRegistry(cap int) *stmtRegistry {
	return &stmtRegistry{stmts: lru.New[uint32, *core.PreparedStmt](cap)}
}

// add registers a statement and returns its connection-scoped id.
func (r *stmtRegistry) add(ps *core.PreparedStmt) uint32 {
	r.nextID++
	r.stmts.Put(r.nextID, ps)
	return r.nextID
}

// get returns the statement for id (marking it recently used), or nil.
func (r *stmtRegistry) get(id uint32) *core.PreparedStmt {
	ps, _ := r.stmts.Get(id)
	return ps
}

// close discards a statement, reporting whether it was present.
func (r *stmtRegistry) close(id uint32) bool { return r.stmts.Delete(id) }

// len reports the number of live statements.
func (r *stmtRegistry) len() int { return r.stmts.Len() }
