// Package server is the PRISMA network front-end: it serves the wire
// protocol of internal/wire over TCP, giving each connection its own
// core.Session. The paper's architecture is explicitly multi-user — "for
// each query a new instance [of the GDH components] is created, possibly
// running at its own processor" (§2.2) — and a session's coordinator PE
// plays that role here: statements from different connections execute
// concurrently against one engine, serialized only by fragment locks.
//
// Per-connection transaction state (BEGIN .. COMMIT/ROLLBACK) survives
// across statements; a connection that drops mid-transaction has its
// transaction aborted by the session close.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wire"
)

// fpFrameWrite simulates a reply-frame write failure: the reply is
// dropped and the connection closes, exactly as a dying NIC would look
// to the client — who must treat the in-flight statement's outcome as
// unknown unless the error is known-retryable.
var fpFrameWrite = fault.Register("server.frame.write")

// errorCode classifies an execution error for the coded Error frame, so
// the client learns whether the failed transaction may safely re-run.
func errorCode(err error) byte {
	switch {
	case errors.Is(err, core.ErrAuth):
		return wire.ErrCodeAuth
	case errors.Is(err, admission.ErrOverloaded):
		return wire.ErrCodeOverloaded
	case errors.Is(err, core.ErrReadOnly):
		return wire.ErrCodeRedirect
	case errors.Is(err, txn.ErrTimeout):
		return wire.ErrCodeDeadline
	case txn.IsRetryable(err):
		return wire.ErrCodeRetryable
	}
	return wire.ErrCodeGeneric
}

// ReplSource serves replication subscribers — a connection that sends
// ReplSubscribe is handed over to it for the rest of its life. Wired
// to repl.Source on a primary.
type ReplSource interface {
	Serve(bw *bufio.Writer, payload []byte) error
}

// Config assembles a server.
type Config struct {
	// Engine is the database engine to serve (required).
	Engine *core.Engine
	// MaxConns caps concurrently served connections (default 64).
	// Connections beyond the cap are refused with an Error frame.
	MaxConns int
	// MaxFrame bounds request and response frames (default
	// wire.DefaultMaxFrame).
	MaxFrame int
	// MaxPrepared caps prepared statements held per connection (default
	// 64); preparing beyond the cap evicts the least-recently-used one.
	MaxPrepared int
	// ChunkRows is the default per-chunk tuple budget for streamed
	// results when the client's ExecStream frame asks for 0 (default
	// 1024 rows).
	ChunkRows int
	// ChunkBytes is the default per-chunk payload budget for streamed
	// results when the client asks for 0 (default 256 KiB). Whatever the
	// client asks for is clamped below MaxFrame so every chunk frame
	// stays acceptable.
	ChunkBytes int
	// StatementTimeout bounds every session's lock waits (see
	// core.Session.SetStatementTimeout); 0 waits forever. Clients can
	// still tighten (or loosen) their own session with
	// `SET STATEMENT_TIMEOUT = <ms>`.
	StatementTimeout time.Duration
	// PipelineDepth caps the request frames a connection may have
	// queued behind the one executing (default 64). The per-connection
	// reader stops reading once the queue is full — natural
	// backpressure on a client that pipelines faster than the engine
	// drains. The unit is frames, not statements: a Batch frame
	// occupies one slot however many statements it carries (its size,
	// like any frame's, is bounded by MaxFrame).
	PipelineDepth int
	// Admission, when set, gates statement execution through a shared
	// admission controller: per-tenant concurrency tokens, a global
	// in-flight cap, priority classes and bounded queueing with load
	// shedding (a coded retryable Error frame). Statements inside an
	// open transaction bypass admission — shedding mid-transaction
	// would break the retry-from-BEGIN contract. The controller is
	// also attached to the engine so SHOW ADMISSION can render it.
	Admission *admission.Controller
	// Logf receives connection-level diagnostics; nil discards them.
	Logf func(format string, args ...any)
	// Source, when set, serves replication subscribers (the primary
	// role). Connections sending ReplSubscribe are refused without it.
	Source ReplSource
	// PrimaryAddr, when set, names the primary this server redirects
	// writes to (the replica role); it rides in the HelloOK trailer and
	// in redirect errors so clients can re-route.
	PrimaryAddr func() string
}

// Server accepts connections and serves statements against one engine.
type Server struct {
	eng         *core.Engine
	maxConns    int
	maxFrame    int
	maxPrepared int
	chunkRows   int
	chunkBytes  int
	pipeDepth   int
	stmtTimeout time.Duration
	logf        func(string, ...any)
	source      ReplSource
	primaryAddr func() string
	adm         *admission.Controller

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// New builds a server over an engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: Config.Engine is required")
	}
	maxConns := cfg.MaxConns
	if maxConns <= 0 {
		maxConns = 64
	}
	maxFrame := cfg.MaxFrame
	if maxFrame <= 0 {
		maxFrame = wire.DefaultMaxFrame
	}
	maxPrepared := cfg.MaxPrepared
	if maxPrepared <= 0 {
		maxPrepared = 64
	}
	chunkRows := cfg.ChunkRows
	if chunkRows <= 0 {
		chunkRows = wire.DefaultChunkRows
	}
	chunkBytes := cfg.ChunkBytes
	if chunkBytes <= 0 {
		chunkBytes = wire.DefaultChunkBytes
	}
	pipeDepth := cfg.PipelineDepth
	if pipeDepth <= 0 {
		pipeDepth = 64
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Admission != nil {
		// SHOW ADMISSION renders through the engine.
		cfg.Engine.SetAdmission(cfg.Admission)
	}
	return &Server{
		eng:         cfg.Engine,
		maxConns:    maxConns,
		maxFrame:    maxFrame,
		maxPrepared: maxPrepared,
		chunkRows:   chunkRows,
		chunkBytes:  chunkBytes,
		pipeDepth:   pipeDepth,
		stmtTimeout: cfg.StatementTimeout,
		logf:        logf,
		source:      cfg.Source,
		primaryAddr: cfg.PrimaryAddr,
		adm:         cfg.Admission,
		conns:       map[net.Conn]struct{}{},
	}, nil
}

// Serve accepts connections on l until Close. It always returns a
// non-nil error; after a graceful Close that error is ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		if !s.track(conn) {
			// Over the connection limit (or closing): refuse politely,
			// and retryably — the limit is a load condition, not a fault,
			// so a backing-off client may try again or move on to another
			// endpoint.
			bw := bufio.NewWriter(conn)
			wire.WriteFrame(bw, wire.TypeError, wire.EncodeError(wire.ErrCodeOverloaded, "server: connection limit reached"))
			bw.Flush()
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops accepting, closes every live connection and waits for
// their handlers (which abort any open transactions) to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// ConnCount reports the number of connections currently being served.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// track admits a connection unless the server is closing or full.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.conns) >= s.maxConns {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// request is one frame handed from a connection's reader to its
// executor. A request with err set is the reader's terminal report.
type request struct {
	typ     byte
	payload []byte
	buf     *[]byte // pooled backing buffer, recycled after execution
	err     error
}

// serveConn runs one connection: handshake, then a pipelined statement
// loop — a reader goroutine queues frames (up to PipelineDepth) while
// the executor drains them in order, so a client may send many
// statements without awaiting replies. Replies are coalesced: the
// buffered writer is flushed only when the queue is empty, so a burst
// of pipelined statements answers in a handful of syscalls. Any
// protocol violation closes the connection; statement errors are
// reported in Error frames, the rest of the pipeline still executes,
// and the connection stays usable.
func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 32<<10)
	bw := bufio.NewWriterSize(conn, 32<<10)

	fail := func(msg string) {
		wire.WriteFrame(bw, wire.TypeError, wire.EncodeError(wire.ErrCodeGeneric, msg))
		bw.Flush()
	}

	typ, payload, err := wire.ReadFrame(br, s.maxFrame)
	if err != nil {
		s.logf("server: %s: handshake read: %v", conn.RemoteAddr(), err)
		if errors.Is(err, wire.ErrFrameTooLarge) {
			fail(err.Error())
		}
		conn.Close()
		return
	}
	hsFail := func(msg string) {
		fail(msg)
		conn.Close()
	}
	if typ != wire.TypeHello {
		hsFail("server: expected Hello frame")
		return
	}
	ver, creds, err := wire.DecodeHelloCreds(payload)
	if err != nil {
		hsFail(err.Error())
		return
	}
	if ver != wire.Version {
		hsFail(fmt.Sprintf("server: unsupported protocol version %d (want %d)", ver, wire.Version))
		return
	}
	// Authentication bites only once users exist: a catalog with no
	// user table serves every connection unbound, exactly as before.
	// Failures are coded ErrCodeAuth — non-retryable, so client retry
	// loops give up instead of hammering a wrong password.
	var user *catalog.User
	if cat := s.eng.Catalog(); cat.HasUsers() {
		var aerr error
		if creds == nil {
			aerr = errors.New("server: authentication required")
		} else {
			user, aerr = cat.Authenticate(creds.Tenant, creds.Secret)
		}
		if aerr != nil {
			wire.WriteFrame(bw, wire.TypeError, wire.EncodeError(wire.ErrCodeAuth, aerr.Error()))
			bw.Flush()
			conn.Close()
			return
		}
	}
	var ok []byte
	ok = append(ok, wire.Version)
	banner := "prisma-serve"
	ok = append(ok, byte(len(banner)>>8), byte(len(banner)))
	ok = append(ok, banner...)
	// Role trailer: pre-replication clients stop at the banner.
	role := wire.RolePrimary
	primary := ""
	if s.eng.IsReadOnly() {
		role = wire.RoleReplica
		if s.primaryAddr != nil {
			primary = s.primaryAddr()
		}
	}
	ok = wire.AppendHelloExtra(ok, &wire.HelloExtra{Role: role, Epoch: s.eng.Epoch(), Primary: primary})
	if err := wire.WriteFrame(bw, wire.TypeHelloOK, ok); err != nil {
		conn.Close()
		return
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return
	}

	sess := s.eng.NewSession()
	defer sess.Close() // aborts an open transaction on disconnect
	sess.SetStatementTimeout(s.stmtTimeout)
	if user != nil {
		sess.SetUser(user)
	}
	reg := newStmtRegistry(s.maxPrepared)

	// The reader decouples frame intake from execution: it queues up to
	// pipeDepth statements behind the executing one and parks when the
	// queue is full (backpressure). It owns pooled payload buffers until
	// the executor finishes with them.
	reqs := make(chan request, s.pipeDepth)
	go func() {
		defer close(reqs)
		for {
			bp := wire.GetBuf()
			typ, payload, err := wire.ReadFrameBuf(br, s.maxFrame, (*bp)[:0])
			if err != nil {
				wire.PutBuf(bp)
				reqs <- request{err: err}
				return
			}
			reqs <- request{typ: typ, payload: payload, buf: bp}
		}
	}()
	defer func() {
		// Unblock and drain the reader before returning: closing the
		// connection fails its next read, so the channel closes.
		conn.Close()
		for rq := range reqs {
			wire.PutBuf(rq.buf)
		}
	}()

	w := &replyWriter{bw: bw, max: s.maxFrame, enc: wire.GetBuf(), primary: s.primaryAddr}
	defer wire.PutBuf(w.enc)
	for rq := range reqs {
		if rq.err != nil {
			// EOF and reset are normal disconnects; an oversized frame
			// gets an explanation before the close.
			if errors.Is(rq.err, wire.ErrFrameTooLarge) {
				fail(rq.err.Error())
			}
			return
		}
		var keep bool
		if grant, aerr := s.admit(sess, rq.typ); aerr != nil {
			// Shed: a coded retryable Error frame answers the statement
			// in place of execution; the connection stays usable and the
			// client's backoff absorbs the retry.
			keep = w.writeErrorCoded(wire.ErrCodeOverloaded, aerr.Error())
		} else {
			if grant != nil {
				w.queue = grant.Wait
			}
			keep = s.handleFrame(sess, reg, w, rq.typ, rq.payload)
			if grant != nil {
				grant.Release()
				w.queue = 0
			}
		}
		wire.PutBuf(rq.buf)
		if !keep {
			bw.Flush() // deliver a pending Error explanation, if any
			return
		}
		if len(reqs) == 0 {
			// Reply coalescing: flush only once no further statement is
			// already queued, so a pipelined burst's replies leave in as
			// few syscalls as possible.
			if bw.Flush() != nil {
				return
			}
		}
	}
}

// admit passes one queued frame through the admission controller. A
// nil grant with a nil error means the frame is not gated: no
// controller, a non-statement frame (Prepare and ClosePrepared are
// bookkeeping, not work), or a statement inside an open transaction —
// the transaction was admitted at its first statement and shedding it
// midway would force an abort the client cannot retry statement-wise.
func (s *Server) admit(sess *core.Session, typ byte) (*admission.Grant, error) {
	if s.adm == nil || sess.InTransaction() {
		return nil, nil
	}
	switch typ {
	case wire.TypeExec, wire.TypeExecStream, wire.TypeBatch, wire.TypeBindExec, wire.TypeDatalog:
	default:
		return nil, nil
	}
	tenant := ""
	class := admission.ClassInteractive
	maxConc := 0
	if u := sess.User(); u != nil {
		tenant = u.Name
		if u.Priority == catalog.PriorityBatch {
			class = admission.ClassBatch
		}
		maxConc = u.MaxConcurrent
	}
	return s.adm.Acquire(tenant, class, maxConc)
}

// replyWriter writes a connection's reply frames into its buffered
// writer, reusing one encode buffer across results.
type replyWriter struct {
	bw      *bufio.Writer
	enc     *[]byte
	max     int
	queue   time.Duration // admission queue wait of the executing statement
	primary func() string // primary address for redirect errors (may be nil)
}

// writeError queues a statement-level Error frame with no retry
// guidance; execution errors go through writeExecError so the client
// learns whether its transaction may re-run.
func (w *replyWriter) writeError(msg string) bool {
	return w.writeErrorCoded(wire.ErrCodeGeneric, msg)
}

// writeExecError queues an execution error classified for retry. A
// redirect (write on a read replica) names the primary when known.
func (w *replyWriter) writeExecError(err error) bool {
	code := errorCode(err)
	msg := err.Error()
	if code == wire.ErrCodeRedirect && w.primary != nil {
		if addr := w.primary(); addr != "" {
			msg = fmt.Sprintf("%s (primary: %s)", msg, addr)
		}
	}
	return w.writeErrorCoded(code, msg)
}

func (w *replyWriter) writeErrorCoded(code byte, msg string) bool {
	if fpFrameWrite.Eval() != nil {
		return false // injected write failure: reply lost, connection dies
	}
	return wire.WriteFrame(w.bw, wire.TypeError, wire.EncodeError(code, msg)) == nil
}

// writeResult queues a Result frame (or the over-limit Error for it).
func (w *replyWriter) writeResult(res *core.Result) bool {
	if fpFrameWrite.Eval() != nil {
		return false // injected write failure: reply lost, connection dies
	}
	wres := &wire.Result{
		Rel:       res.Rel,
		Affected:  res.Affected,
		Msg:       res.Msg,
		Plan:      res.Plan,
		SimTime:   res.SimTime,
		WallTime:  res.WallTime,
		QueueTime: w.queue,
	}
	*w.enc = wire.AppendResult((*w.enc)[:0], wres)
	buf := *w.enc
	if len(buf)+1 > w.max {
		// The result itself exceeds the frame limit; tell the client
		// rather than shipping a frame it must refuse.
		return w.writeError(fmt.Sprintf("server: result of %d bytes exceeds frame limit %d", len(buf), w.max))
	}
	return wire.WriteFrame(w.bw, wire.TypeResult, buf) == nil
}

// handleFrame executes one queued frame and writes its reply frames
// (unflushed). It returns false when the connection must close: a
// protocol violation (after writing its Error explanation) or a
// transport failure.
func (s *Server) handleFrame(sess *core.Session, reg *stmtRegistry, w *replyWriter, typ byte, payload []byte) bool {
	var res *core.Result
	var execErr error
	switch typ {
	case wire.TypeExec:
		res, execErr = sess.Exec(string(payload))
	case wire.TypeExecStream:
		chunkRows, chunkBytes, sql, derr := wire.DecodeExecStream(payload)
		if derr != nil {
			// A malformed frame is a protocol violation.
			w.writeError(derr.Error())
			return false
		}
		cur, sres, err := sess.Stream(sql)
		if err != nil {
			execErr = err
			break
		}
		if cur == nil {
			// DDL / DML / transaction control: a plain Result frame,
			// exactly as TypeExec would answer.
			res = sres
			break
		}
		return s.streamResult(w.bw, cur, chunkRows, chunkBytes)
	case wire.TypeBatch:
		stmts, derr := wire.DecodeBatch(payload)
		if derr != nil {
			w.writeError(derr.Error())
			return false
		}
		// One reply per statement, in order; an error fails its
		// statement only (for transaction semantics mid-batch, see the
		// package doc of internal/client's Pipeline).
		for i := range stmts {
			st := &stmts[i]
			var bres *core.Result
			var berr error
			if st.Bind {
				if ps := reg.get(st.ID); ps != nil {
					bres, berr = sess.ExecPrepared(ps, st.Args)
				} else {
					berr = fmt.Errorf("server: unknown or closed prepared statement id %d", st.ID)
				}
			} else {
				bres, berr = sess.Exec(st.SQL)
			}
			if berr != nil {
				if !w.writeExecError(berr) {
					return false
				}
				continue
			}
			if !w.writeResult(bres) {
				return false
			}
		}
		return true
	case wire.TypeDatalog:
		r, err := s.eng.DatalogQuery(sess, string(payload))
		if err != nil {
			execErr = err
		} else {
			res = &core.Result{Rel: r}
		}
	case wire.TypePrepare:
		ps, err := sess.Prepare(string(payload))
		if err != nil {
			execErr = err
			break
		}
		id := reg.add(ps)
		return wire.WriteFrame(w.bw, wire.TypePrepareOK, wire.EncodePrepareOK(id, ps.NumParams())) == nil
	case wire.TypeBindExec:
		id, args, err := wire.DecodeBindExec(payload)
		if err != nil {
			// A malformed frame is a protocol violation.
			w.writeError(err.Error())
			return false
		}
		ps := reg.get(id)
		if ps == nil {
			// A stale id is a statement error, not a protocol one:
			// the client may have raced an eviction or reused a
			// closed handle, and the connection stays usable.
			execErr = fmt.Errorf("server: unknown or closed prepared statement id %d", id)
			break
		}
		res, execErr = sess.ExecPrepared(ps, args)
	case wire.TypeClosePrepared:
		id, err := wire.DecodeClosePrepared(payload)
		if err != nil {
			w.writeError(err.Error())
			return false
		}
		if reg.close(id) {
			res = &core.Result{Msg: fmt.Sprintf("statement %d closed", id)}
		} else {
			execErr = fmt.Errorf("server: unknown or closed prepared statement id %d", id)
		}
	case wire.TypeReplSubscribe:
		// The connection becomes a replication stream for the rest of
		// its life; Serve blocks until the subscriber detaches.
		if s.source == nil {
			w.writeError("server: this endpoint does not serve replication")
			return false
		}
		if err := s.source.Serve(w.bw, payload); err != nil {
			s.logf("server: replication subscriber: %v", err)
		}
		return false
	case wire.TypeHello:
		w.writeError("server: duplicate Hello")
		return false
	default:
		w.writeError(fmt.Sprintf("server: unknown frame type 0x%02x", typ))
		return false
	}
	if execErr != nil {
		return w.writeExecError(execErr)
	}
	return w.writeResult(res)
}

// streamResult drains one cursor onto the wire as ResultHead, RowChunk
// frames within the row/byte budgets, and a closing ResultEnd. It
// returns false when the connection is no longer usable (transport
// failure — the caller closes, and the deferred cursor close aborts an
// autocommit transaction so its locks never outlive the connection).
// Execution errors mid-stream are statement-level: an Error frame
// terminates the stream in place of ResultEnd and the connection stays
// usable.
func (s *Server) streamResult(bw *bufio.Writer, cur *core.Cursor, chunkRows, chunkBytes int) (ok bool) {
	defer cur.Close()
	if chunkRows <= 0 {
		chunkRows = s.chunkRows
	}
	if chunkBytes <= 0 {
		chunkBytes = s.chunkBytes
	}
	// Keep every chunk frame under the server's own frame limit, with
	// headroom for the frame header and one tuple of overshoot.
	if lim := s.maxFrame / 2; chunkBytes > lim {
		chunkBytes = lim
	}
	// The head is written but not flushed: for the common small result
	// (one batch, one chunk) the whole head/chunk/end sequence leaves in
	// a single syscall, costing streaming nothing over a Result frame.
	// Larger streams flush every full chunk, and flush the pending
	// partial chunk whenever another batch is known to be coming — the
	// client reads tuples while the server keeps draining the cursor.
	head := wire.EncodeResultHead(&wire.ResultHead{Plan: cur.Plan(), Schema: cur.Schema()})
	if wire.WriteFrame(bw, wire.TypeResultHead, head) != nil {
		return false
	}
	failStmt := func(code byte, msg string) bool {
		// Error-at-any-point semantics: the Error frame replaces further
		// chunks and the ResultEnd.
		return wire.WriteFrame(bw, wire.TypeError, wire.EncodeError(code, msg)) == nil && bw.Flush() == nil
	}
	// Start small: a point query must not pay a chunk-budget-sized
	// allocation (zeroed by the runtime, then GC-scanned); append grows
	// the buffer toward the budget only for results that need it.
	chunk := make([]byte, 4, 512)
	n := 0
	emitChunk := func() bool {
		if n == 0 {
			return true
		}
		binary.BigEndian.PutUint32(chunk[:4], uint32(n))
		if wire.WriteFrame(bw, wire.TypeRowChunk, chunk) != nil {
			return false
		}
		chunk = chunk[:4]
		n = 0
		return true
	}
	var scratch []byte
	rel, err := cur.Next()
	for err == nil && rel != nil {
		for _, t := range rel.Tuples {
			scratch = value.AppendTuple(scratch[:0], t)
			if len(scratch)+5 > s.maxFrame {
				return failStmt(wire.ErrCodeGeneric, fmt.Sprintf("server: tuple of %d bytes exceeds frame limit %d", len(scratch), s.maxFrame))
			}
			// Flush before appending would push the chunk past the byte
			// budget: a chunk never exceeds the client's request except
			// when a single tuple alone does.
			if n > 0 && len(chunk)+len(scratch)-4 > chunkBytes {
				if !emitChunk() || bw.Flush() != nil {
					return false
				}
			}
			chunk = append(chunk, scratch...)
			n++
			if n >= chunkRows || len(chunk)-4 >= chunkBytes {
				if !emitChunk() || bw.Flush() != nil {
					return false
				}
			}
		}
		var next *value.Relation
		next, err = cur.Next()
		if next != nil && (n > 0 || bw.Buffered() > 0) {
			// More batches coming: ship everything pending now.
			if !emitChunk() || bw.Flush() != nil {
				return false
			}
		}
		rel = next
	}
	if err != nil {
		return failStmt(errorCode(err), err.Error())
	}
	if !emitChunk() {
		return false
	}
	end := wire.EncodeResultEnd(&wire.ResultEnd{Rows: cur.Rows(), SimTime: cur.SimTime(), WallTime: cur.WallTime()})
	return wire.WriteFrame(bw, wire.TypeResultEnd, end) == nil && bw.Flush() == nil
}
