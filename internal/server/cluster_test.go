package server

import (
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/client"
	"repro/internal/core"
)

// TestClusterRotatesOffOverloadedEndpoint pins the routing contract for
// sheds: a statement refused by one endpoint's admission control did
// not run, so Cluster.Query must try the next endpoint instead of
// surfacing the retryable error to the caller.
func TestClusterRotatesOffOverloadedEndpoint(t *testing.T) {
	mkEngine := func() *core.Engine {
		eng, err := core.New(core.Config{NumPEs: 4})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		s := eng.NewSession()
		defer s.Close()
		for _, sql := range []string{
			`CREATE TABLE t (k INT, PRIMARY KEY (k))`,
			`INSERT INTO t VALUES (1)`,
		} {
			if _, err := s.Exec(sql); err != nil {
				t.Fatal(err)
			}
		}
		return eng
	}

	// Endpoint A sheds everything: its only admission slot is held for
	// the whole test and waiters time out fast. Endpoint B is healthy.
	adm := admission.New(admission.Config{MaxInFlight: 1, QueueDepth: 4, WaitTimeout: 10 * time.Millisecond})
	g, err := adm.Acquire("holder", admission.ClassInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	addrA := startServer(t, Config{Engine: mkEngine(), Admission: adm})
	addrB := startServer(t, Config{Engine: mkEngine()})

	cl, err := client.DialCluster([]string{addrA, addrB})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Round-robin guarantees the saturated endpoint is picked first for
	// one of two consecutive reads; both must still succeed.
	for i := 0; i < 2; i++ {
		rel, err := cl.Query(`SELECT k FROM t`)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if rel.Len() != 1 {
			t.Fatalf("read %d rows = %d", i, rel.Len())
		}
	}
	if st := adm.Stats(); st.Shed == 0 {
		t.Errorf("saturated endpoint shed nothing — rotation untested")
	}
}
