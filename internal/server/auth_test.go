package server

import (
	"errors"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/wire"
)

// authEngine builds an engine with an emp table, a tenant "acme"
// (secret "s3cret") granted SELECT on it, and returns the engine plus a
// local admin session for mid-test grant surgery.
func authEngine(t *testing.T) (*core.Engine, *core.Session) {
	t.Helper()
	eng, err := core.New(core.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	admin := eng.NewSession()
	t.Cleanup(admin.Close)
	for _, sql := range []string{
		`CREATE TABLE emp (id INT, dept VARCHAR, salary INT, PRIMARY KEY (id))
			FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`,
		`INSERT INTO emp VALUES (1, 'eng', 100), (2, 'ops', 80), (3, 'eng', 120)`,
		`CREATE USER acme PASSWORD 's3cret'`,
		`GRANT SELECT ON emp TO acme`,
	} {
		if _, err := admin.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	return eng, admin
}

// wantAuthErr asserts err is the coded, non-retryable auth error.
func wantAuthErr(t *testing.T, err error, what string) {
	t.Helper()
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("%s err = %v, want *client.ServerError", what, err)
	}
	if se.Code != wire.ErrCodeAuth {
		t.Fatalf("%s code = 0x%02x, want ErrCodeAuth", what, se.Code)
	}
	if se.Retryable() || client.IsRetryable(err) {
		t.Fatalf("%s classified retryable; auth failures must not be", what)
	}
}

func TestHandshakeAuth(t *testing.T) {
	eng, _ := authEngine(t)
	addr := startServer(t, Config{Engine: eng})

	// A legacy Hello with no credentials is refused once users exist.
	_, err := client.Dial(addr)
	wantAuthErr(t, err, "credential-less dial")

	// Wrong secret and unknown tenant are refused at handshake.
	_, err = client.Dial(addr, client.Options{Tenant: "acme", Secret: "wrong"})
	wantAuthErr(t, err, "bad-secret dial")
	_, err = client.Dial(addr, client.Options{Tenant: "nobody", Secret: "s3cret"})
	wantAuthErr(t, err, "unknown-tenant dial")

	// Good credentials bind the session to the tenant's grants.
	c, err := client.Dial(addr, client.Options{Tenant: "acme", Secret: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rel, err := c.Query(`SELECT id FROM emp WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("rows = %d", rel.Len())
	}
	// The grant covers SELECT only; a write is refused in-session
	// without breaking the connection.
	_, err = c.Exec(`INSERT INTO emp VALUES (9, 'hr', 1)`)
	wantAuthErr(t, err, "ungranted INSERT")
	if _, err := c.Query(`SELECT id FROM emp WHERE id = 2`); err != nil {
		t.Fatalf("connection unusable after auth refusal: %v", err)
	}
}

func TestCredentialsIgnoredWithoutUsers(t *testing.T) {
	// A server whose catalog holds no users serves credentialed and
	// legacy Hellos alike — auth is opt-in via CREATE USER.
	addr := startServer(t, Config{})
	c, err := client.Dial(addr, client.Options{Tenant: "ghost", Secret: "whatever"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE t (k INT, PRIMARY KEY (k))`); err != nil {
		t.Fatal(err)
	}
}

func TestRevokedGrantMidSession(t *testing.T) {
	eng, admin := authEngine(t)
	addr := startServer(t, Config{Engine: eng})
	c, err := client.Dial(addr, client.Options{Tenant: "acme", Secret: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const q = `SELECT id FROM emp WHERE id = 1`
	if _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	// Revocation bites the very next statement on the live session —
	// the shared plan cache must not shield it.
	if _, err := admin.Exec(`REVOKE SELECT ON emp FROM acme`); err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(q)
	wantAuthErr(t, err, "revoked SELECT")
	// Re-granting restores service on the same connection.
	if _, err := admin.Exec(`GRANT SELECT ON emp TO acme`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(q); err != nil {
		t.Fatalf("query after re-grant: %v", err)
	}
}

// TestPreparedReplanStaysAuthorized pins the prepared-statement path:
// after a revoke plus a DDL that invalidates the cached plan, the
// transparent replan must not resurrect access to the table.
func TestPreparedReplanStaysAuthorized(t *testing.T) {
	eng, admin := authEngine(t)
	addr := startServer(t, Config{Engine: eng})
	c, err := client.Dial(addr, client.Options{Tenant: "acme", Secret: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Prepare(`SELECT id FROM emp WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Query(int64(1)); err != nil {
		t.Fatal(err)
	}
	// Revoke, then bump the catalog version so the next execution
	// replans instead of reusing the compiled form.
	for _, sql := range []string{
		`REVOKE SELECT ON emp FROM acme`,
		`CREATE TABLE unrelated (k INT, PRIMARY KEY (k))`,
	} {
		if _, err := admin.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	_, err = st.Query(int64(1))
	wantAuthErr(t, err, "replanned prepared SELECT")
}

// TestAdmissionOverTCP drives the statement admission queue through the
// wire: a held slot queues one statement (surfacing its wait in the
// Result timings) and sheds the next with the coded retryable overload
// error, leaving the connection open.
func TestAdmissionOverTCP(t *testing.T) {
	eng, err := core.New(core.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	local := eng.NewSession()
	if _, err := local.Exec(`CREATE TABLE t (k INT, PRIMARY KEY (k))`); err != nil {
		t.Fatal(err)
	}
	local.Close()

	adm := admission.New(admission.Config{MaxInFlight: 1, QueueDepth: 4, WaitTimeout: 60 * time.Millisecond})
	addr := startServer(t, Config{Engine: eng, Admission: adm})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Occupy the only slot from the test, then release it shortly: the
	// client's statement queues and its Result reports the wait.
	g, err := adm.Acquire("holder", admission.ClassInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(15 * time.Millisecond)
		g.Release()
	}()
	res, err := c.Exec(`SELECT k FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueTime <= 0 {
		t.Fatalf("queued statement QueueTime = %v, want > 0", res.QueueTime)
	}

	// Hold the slot past the wait timeout: the statement is shed with
	// the retryable overload code and the connection survives.
	g2, err := adm.Acquire("holder", admission.ClassInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Exec(`SELECT k FROM t`)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.ErrCodeOverloaded {
		t.Fatalf("shed err = %v, want coded ErrCodeOverloaded", err)
	}
	if !client.IsRetryable(err) {
		t.Fatalf("shed statement must be retryable: %v", err)
	}
	g2.Release()
	if _, err := c.Exec(`SELECT k FROM t`); err != nil {
		t.Fatalf("connection unusable after shed: %v", err)
	}
	if st := adm.Stats(); st.Shed == 0 {
		t.Errorf("controller recorded no sheds")
	}
}
