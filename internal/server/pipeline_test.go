package server

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/wire"
)

// Pipeline conformance: multiple statements in flight on one
// connection, replies strictly ordered, statement errors isolated, and
// disconnect mid-pipeline leaving no locks behind.

// startAcctServer brings up a server over its own engine with a loaded
// acct table and returns the address plus the engine for inspection.
func startAcctServer(t *testing.T, cfg Config) (string, *core.Engine) {
	t.Helper()
	eng, err := core.New(core.Config{NumPEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	cfg.Engine = eng
	addr := startServer(t, cfg)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustExec(t, c, `CREATE TABLE acct (id INT, balance INT, PRIMARY KEY (id))
		FRAGMENT BY HASH(id) INTO 4 FRAGMENTS`)
	for i := 0; i < 32; i += 8 {
		mustExec(t, c, fmt.Sprintf(`INSERT INTO acct VALUES (%d, 100), (%d, 100), (%d, 100), (%d, 100),
			(%d, 100), (%d, 100), (%d, 100), (%d, 100)`,
			i, i+1, i+2, i+3, i+4, i+5, i+6, i+7))
	}
	return addr, eng
}

// TestPipelinedOrderingDepth64 writes 64 Exec frames without reading a
// single reply, then collects all 64: replies must arrive in statement
// order, each carrying the right row.
func TestPipelinedOrderingDepth64(t *testing.T) {
	addr, _ := startAcctServer(t, Config{})
	conn := rawDial(t, addr)
	handshake(t, conn)
	const depth = 64
	for i := 0; i < depth; i++ {
		sql := fmt.Sprintf(`SELECT id FROM acct WHERE id = %d`, i%32)
		if err := wire.WriteFrame(conn, wire.TypeExec, []byte(sql)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < depth; i++ {
		typ, payload, err := wire.ReadFrame(conn, 0)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if typ != wire.TypeResult {
			t.Fatalf("reply %d: type %#x (%s)", i, typ, payload)
		}
		res, err := wire.DecodeResult(payload)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if res.Rel == nil || res.Rel.Len() != 1 {
			t.Fatalf("reply %d: unexpected relation %v", i, res.Rel)
		}
		if got := res.Rel.Tuples[0][0].Int(); got != int64(i%32) {
			t.Fatalf("reply %d carries id %d, want %d — replies out of order", i, got, i%32)
		}
	}
}

// TestPipelineBackpressure pushes far more statements than the queue
// depth; the reader must park instead of dropping or reordering.
func TestPipelineBackpressure(t *testing.T) {
	addr, _ := startAcctServer(t, Config{PipelineDepth: 2})
	conn := rawDial(t, addr)
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	handshake(t, conn)
	const n = 100
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			sql := fmt.Sprintf(`SELECT id FROM acct WHERE id = %d`, i%32)
			if err := wire.WriteFrame(conn, wire.TypeExec, []byte(sql)); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		typ, payload, err := wire.ReadFrame(conn, 0)
		if err != nil || typ != wire.TypeResult {
			t.Fatalf("reply %d: typ=%#x err=%v", i, typ, err)
		}
		res, err := wire.DecodeResult(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rel.Tuples[0][0].Int(); got != int64(i%32) {
			t.Fatalf("reply %d carries id %d, want %d", i, got, i%32)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("writer: %v", err)
	}
}

// TestHugePipelineWindowNoDeadlock pins the client's concurrent
// write/read exchange: a window large enough to overflow the kernel
// socket buffers on both sides must complete instead of deadlocking
// (server blocked writing replies nobody reads, client blocked
// writing frames nobody reads).
func TestHugePipelineWindowNoDeadlock(t *testing.T) {
	addr, _ := startAcctServer(t, Config{PipelineDepth: 4})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 4000
	p := c.Pipeline()
	for i := 0; i < n; i++ {
		p.Exec(fmt.Sprintf(`SELECT id FROM acct WHERE id = %d`, i%32))
	}
	done := make(chan struct{})
	var results []client.PipeResult
	go func() {
		defer close(done)
		results, err = p.Run()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("huge pipelined window deadlocked")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("results = %d, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("statement %d: %v", i, r.Err)
		}
		if got := r.Res.Rel.Tuples[0][0].Int(); got != int64(i%32) {
			t.Fatalf("reply %d carries id %d, want %d", i, got, i%32)
		}
	}
}

// TestPipelineErrorKeepsRestUsable: an error mid-pipeline answers that
// statement with Error and the remaining pipelined statements (and the
// connection) still work.
func TestPipelineErrorKeepsRestUsable(t *testing.T) {
	addr, _ := startAcctServer(t, Config{})
	conn := rawDial(t, addr)
	handshake(t, conn)
	stmts := []string{
		`SELECT id FROM acct WHERE id = 1`,
		`SELECT nope FROM missing_table`,
		`SELECT id FROM acct WHERE id = 2`,
	}
	for _, sql := range stmts {
		if err := wire.WriteFrame(conn, wire.TypeExec, []byte(sql)); err != nil {
			t.Fatal(err)
		}
	}
	wantTypes := []byte{wire.TypeResult, wire.TypeError, wire.TypeResult}
	for i, want := range wantTypes {
		typ, payload, err := wire.ReadFrame(conn, 0)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if typ != want {
			t.Fatalf("reply %d: type %#x (%q), want %#x", i, typ, payload, want)
		}
	}
	// Connection still serves statements after the mid-pipeline error.
	if err := wire.WriteFrame(conn, wire.TypeExec, []byte(`SELECT id FROM acct WHERE id = 3`)); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadFrame(conn, 0)
	if err != nil || typ != wire.TypeResult {
		t.Fatalf("post-error statement: typ=%#x err=%v", typ, err)
	}
}

// TestPipelinedExecStream interleaves a streamed SELECT with plain
// Exec frames in one pipelined burst; the stream's frames arrive
// first and complete, then the following statement's Result.
func TestPipelinedExecStream(t *testing.T) {
	addr, _ := startAcctServer(t, Config{})
	conn := rawDial(t, addr)
	handshake(t, conn)
	if err := wire.WriteFrame(conn, wire.TypeExecStream,
		wire.EncodeExecStream(8, 0, `SELECT id FROM acct`)); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.TypeExec, []byte(`SELECT id FROM acct WHERE id = 5`)); err != nil {
		t.Fatal(err)
	}
	// Drain the stream: head, chunks, end.
	typ, payload, err := wire.ReadFrame(conn, 0)
	if err != nil || typ != wire.TypeResultHead {
		t.Fatalf("stream head: typ=%#x err=%v", typ, err)
	}
	head, err := wire.DecodeResultHead(payload)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		typ, payload, err = wire.ReadFrame(conn, 0)
		if err != nil {
			t.Fatal(err)
		}
		if typ == wire.TypeResultEnd {
			break
		}
		if typ != wire.TypeRowChunk {
			t.Fatalf("mid-stream frame %#x", typ)
		}
		tuples, err := wire.DecodeRowChunk(payload, head.Schema)
		if err != nil {
			t.Fatal(err)
		}
		rows += len(tuples)
	}
	if rows != 32 {
		t.Fatalf("streamed %d rows, want 32", rows)
	}
	typ, _, err = wire.ReadFrame(conn, 0)
	if err != nil || typ != wire.TypeResult {
		t.Fatalf("pipelined statement after stream: typ=%#x err=%v", typ, err)
	}
}

// TestClientPipelineAndBatch drives the client-level APIs: Pipeline
// with mixed success/error, SendBatch ordering, Stmt.ExecBatch.
func TestClientPipelineAndBatch(t *testing.T) {
	addr, _ := startAcctServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := c.Pipeline()
	p.Exec(`UPDATE acct SET balance = balance + 1 WHERE id = 1`)
	p.Exec(`SELECT garbage FROM nowhere`)
	p.Exec(`SELECT balance FROM acct WHERE id = 1`)
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	results, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil || results[0].Res.Affected != 1 {
		t.Fatalf("update result = %+v", results[0])
	}
	if results[1].Err == nil {
		t.Fatal("bad statement did not error")
	}
	if results[2].Err != nil || results[2].Res.Rel.Tuples[0][0].Int() != 101 {
		t.Fatalf("select result = %+v", results[2])
	}
	// The pipeline is reusable after Run.
	p.Exec(`SELECT balance FROM acct WHERE id = 2`)
	if results, err = p.Run(); err != nil || len(results) != 1 || results[0].Err != nil {
		t.Fatalf("reused pipeline: %v %+v", err, results)
	}

	// SendBatch: one frame, ordered replies, isolated errors.
	batch, err := c.SendBatch(
		`UPDATE acct SET balance = balance + 1 WHERE id = 3`,
		`this is not SQL`,
		`SELECT balance FROM acct WHERE id = 3`,
	)
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Err != nil || batch[1].Err == nil || batch[2].Err != nil {
		t.Fatalf("batch errors misplaced: %+v", batch)
	}
	if batch[2].Res.Rel.Tuples[0][0].Int() != 101 {
		t.Fatalf("batch select = %v", batch[2].Res.Rel)
	}

	// Stmt.ExecBatch: prepared statement, many argument sets, one frame.
	st, err := c.Prepare(`UPDATE acct SET balance = balance + ? WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	sets := make([][]any, 16)
	for i := range sets {
		sets[i] = []any{1, i % 8}
	}
	bres, err := st.ExecBatch(sets...)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range bres {
		if r.Err != nil || r.Res.Affected != 1 {
			t.Fatalf("ExecBatch result %d = %+v", i, r)
		}
	}
	rel, err := c.Query(`SELECT balance FROM acct WHERE id = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][0].Int() != 102 {
		t.Fatalf("balance after ExecBatch = %d, want 102", rel.Tuples[0][0].Int())
	}
}

// TestPipelineExplicitTxnSemantics pins the documented mid-pipeline
// transaction behavior: a statement error does not roll back the open
// transaction; its other statements commit.
func TestPipelineExplicitTxnSemantics(t *testing.T) {
	addr, _ := startAcctServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results, err := c.SendBatch(
		`BEGIN`,
		`UPDATE acct SET balance = balance + 5 WHERE id = 10`,
		`SELECT broken FROM nowhere`,
		`UPDATE acct SET balance = balance + 5 WHERE id = 11`,
		`COMMIT`,
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []bool{false, false, true, false, false} {
		if got := results[i].Err != nil; got != want {
			t.Fatalf("statement %d error = %v (%v), want %v", i, got, results[i].Err, want)
		}
	}
	checkBalance(t, c, 10, 105)
	checkBalance(t, c, 11, 105)
}

// TestPipelineDeadlockVictim: two pipelined transactions deadlock; the
// victim's later statements answer "aborted" until its pipelined
// ROLLBACK, and both connections stay usable.
func TestPipelineDeadlockVictim(t *testing.T) {
	addr, _ := startAcctServer(t, Config{})
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Single-fragment tables make the lock footprint deterministic.
	mustExec(t, c1, `CREATE TABLE ta (id INT, v INT)`)
	mustExec(t, c1, `CREATE TABLE tb (id INT, v INT)`)
	mustExec(t, c1, `INSERT INTO ta VALUES (1, 0)`)
	mustExec(t, c1, `INSERT INTO tb VALUES (1, 0)`)

	mustExec(t, c1, `BEGIN`)
	mustExec(t, c2, `BEGIN`)
	mustExec(t, c1, `UPDATE ta SET v = 1`)
	mustExec(t, c2, `UPDATE tb SET v = 1`)

	// Cross updates: c1 wants tb (held by c2), c2 wants ta (held by
	// c1) — a two-session cycle; exactly one side is the victim.
	type outcome struct {
		results []client.PipeResult
		err     error
	}
	o1 := make(chan outcome, 1)
	go func() {
		r, err := c1.SendBatch(`UPDATE tb SET v = 2`, `SELECT v FROM ta`, `ROLLBACK`)
		o1 <- outcome{r, err}
	}()
	r2, err2 := c2.SendBatch(`UPDATE ta SET v = 2`, `SELECT v FROM tb`, `ROLLBACK`)
	r1 := <-o1
	if r1.err != nil || err2 != nil {
		t.Fatalf("transport errors: %v / %v", r1.err, err2)
	}
	victim, survivor := r1.results, r2
	if victim[0].Err == nil {
		victim, survivor = r2, r1.results
	}
	if victim[0].Err == nil || !strings.Contains(victim[0].Err.Error(), "deadlock") {
		t.Fatalf("victim's update error = %v, want deadlock", victim[0].Err)
	}
	// After the abort, the victim's next statement fails until ROLLBACK.
	if victim[1].Err == nil || !strings.Contains(victim[1].Err.Error(), "aborted") {
		t.Fatalf("victim's post-abort statement error = %v, want aborted", victim[1].Err)
	}
	if victim[2].Err != nil {
		t.Fatalf("victim's ROLLBACK failed: %v", victim[2].Err)
	}
	for i, r := range survivor {
		if r.Err != nil {
			t.Fatalf("survivor statement %d failed: %v", i, r.Err)
		}
	}
	// Both connections are alive and lock-free.
	mustExec(t, c1, `UPDATE ta SET v = 9`)
	mustExec(t, c2, `UPDATE tb SET v = 9`)
}

// TestDisconnectMidPipelineReleasesLocks: a client that vanishes with
// a transaction open and statements queued must leave no locks or
// active transactions behind.
func TestDisconnectMidPipelineReleasesLocks(t *testing.T) {
	addr, eng := startAcctServer(t, Config{})
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	handshake(t, conn)
	if err := wire.WriteFrame(conn, wire.TypeExec, []byte(`BEGIN`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		sql := fmt.Sprintf(`UPDATE acct SET balance = balance + 1 WHERE id = %d`, i)
		if err := wire.WriteFrame(conn, wire.TypeExec, []byte(sql)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for BEGIN's reply so the transaction is definitely open,
	// then vanish with the rest of the pipeline in flight.
	if typ, _, err := wire.ReadFrame(conn, 0); err != nil || typ != wire.TypeResult {
		t.Fatalf("BEGIN reply: typ=%#x err=%v", typ, err)
	}
	conn.Close()

	// The server must abort the session: no active transactions, and
	// every acct row lockable again.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Txns().ActiveCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d transactions still active after disconnect", eng.Txns().ActiveCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 8; i++ {
		mustExec(t, c, fmt.Sprintf(`UPDATE acct SET balance = balance + 1 WHERE id = %d`, i))
	}
}
