package admission

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFastPathGrant(t *testing.T) {
	c := New(Config{MaxInFlight: 2})
	g1, err := c.Acquire("a", ClassInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Acquire("b", ClassInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.InFlight != 2 {
		t.Errorf("InFlight = %d, want 2", st.InFlight)
	}
	g1.Release()
	g2.Release()
	if st := c.Stats(); st.InFlight != 0 {
		t.Errorf("InFlight after release = %d, want 0", st.InFlight)
	}
}

func TestQueueThenGrant(t *testing.T) {
	c := New(Config{MaxInFlight: 1})
	g1, err := c.Acquire("a", ClassInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Grant)
	go func() {
		g, err := c.Acquire("b", ClassInteractive, 0)
		if err != nil {
			t.Error(err)
		}
		done <- g
	}()
	// The second acquire must be queued, not granted.
	deadline := time.Now().Add(time.Second)
	for c.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if q := c.Stats().Queued; q != 1 {
		t.Fatalf("Queued = %d, want 1", q)
	}
	g1.Release()
	g2 := <-done
	if g2 == nil {
		t.Fatal("queued acquire returned nil grant")
	}
	if g2.Wait <= 0 {
		t.Errorf("queued grant Wait = %v, want > 0", g2.Wait)
	}
	g2.Release()
}

func TestQueueFullSheds(t *testing.T) {
	c := New(Config{MaxInFlight: 1, QueueDepth: 1})
	g, err := c.Acquire("a", ClassInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	queued := make(chan error)
	go func() {
		g2, err := c.Acquire("a", ClassInteractive, 0)
		if g2 != nil {
			g2.Release()
		}
		queued <- err
	}()
	deadline := time.Now().Add(time.Second)
	for c.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Queue depth 1 is occupied: the next statement is shed immediately.
	if _, err := c.Acquire("a", ClassInteractive, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third acquire err = %v, want ErrOverloaded", err)
	}
	if st := c.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}
	g.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
}

func TestWaitTimeoutSheds(t *testing.T) {
	c := New(Config{MaxInFlight: 1, WaitTimeout: 20 * time.Millisecond})
	g, err := c.Acquire("a", ClassInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	start := time.Now()
	_, err = c.Acquire("b", ClassInteractive, 0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("timed-out acquire err = %v, want ErrOverloaded", err)
	}
	if since := time.Since(start); since < 15*time.Millisecond {
		t.Errorf("shed after %v, want >= the 20ms wait timeout", since)
	}
	if st := c.Stats(); st.Queued != 0 {
		t.Errorf("Queued = %d after timeout, want 0 (waiter removed)", st.Queued)
	}
}

func TestInteractiveDequeuesBeforeBatch(t *testing.T) {
	c := New(Config{MaxInFlight: 1})
	g, err := c.Acquire("x", ClassInteractive, 0)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	// Enqueue batch first, then interactive — waiting until each waiter
	// is parked so the queue order is deterministic. The interactive
	// waiter must still be granted first.
	for i, w := range []struct {
		tenant string
		class  int
	}{{"batch-tenant", ClassBatch}, {"inter-tenant", ClassInteractive}} {
		wg.Add(1)
		go func(tenant string, class int) {
			defer wg.Done()
			g, err := c.Acquire(tenant, class, 0)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			g.Release()
		}(w.tenant, w.class)
		deadline := time.Now().Add(time.Second)
		for c.Stats().Queued < i+1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := c.Stats().Queued; got < i+1 {
			t.Fatalf("waiter for %s never queued (Queued=%d)", w.tenant, got)
		}
	}
	g.Release()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "inter-tenant" {
		t.Errorf("grant order = %v, want interactive first", order)
	}
}

func TestPerTenantTokensCapOneTenant(t *testing.T) {
	c := New(Config{MaxInFlight: 4, WaitTimeout: 20 * time.Millisecond})
	// Tenant "hog" is capped at 1 in flight; the 2nd acquire times out
	// even though the server has free slots.
	g1, err := c.Acquire("hog", ClassInteractive, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer g1.Release()
	if _, err := c.Acquire("hog", ClassInteractive, 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-token acquire err = %v, want ErrOverloaded", err)
	}
	// Another tenant is unaffected.
	g2, err := c.Acquire("polite", ClassInteractive, 1)
	if err != nil {
		t.Fatalf("other tenant blocked by hog's cap: %v", err)
	}
	g2.Release()
}

func TestReleaseSkipsCappedTenantWaiter(t *testing.T) {
	c := New(Config{MaxInFlight: 1})
	gHog, err := c.Acquire("hog", ClassInteractive, 1)
	if err != nil {
		t.Fatal(err)
	}
	var hogDone, politeDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // hog's second statement: at its token cap
		defer wg.Done()
		g, err := c.Acquire("hog", ClassInteractive, 1)
		if err == nil {
			hogDone.Store(true)
			g.Release()
		}
	}()
	deadline := time.Now().Add(time.Second)
	for c.Stats().Queued < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	go func() {
		defer wg.Done()
		g, err := c.Acquire("polite", ClassInteractive, 1)
		if err == nil {
			politeDone.Store(true)
			g.Release()
		}
	}()
	for c.Stats().Queued < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Releasing the slot while hog still holds... nothing (hog released
	// nothing): the FIRST waiter is hog's — at its cap — so the release
	// must skip it and grant polite.
	gHog.Release()
	for !politeDone.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !politeDone.Load() {
		t.Fatalf("release did not skip the capped tenant's waiter")
	}
	wg.Wait() // hog's waiter is granted once polite releases
	if !hogDone.Load() {
		t.Errorf("capped tenant's waiter never eventually granted")
	}
}

func TestStatsPerTenant(t *testing.T) {
	c := New(Config{MaxInFlight: 8})
	g, _ := c.Acquire("a", ClassInteractive, 0)
	g.Release()
	g, _ = c.Acquire("b", ClassBatch, 0)
	g.Release()
	g, _ = c.Acquire("a", ClassInteractive, 0)
	g.Release()
	st := c.Stats()
	if len(st.Tenants) != 2 {
		t.Fatalf("tenants = %d, want 2", len(st.Tenants))
	}
	if st.Tenants[0].Tenant != "a" || st.Tenants[0].Admitted != 2 {
		t.Errorf("tenant a stats = %+v, want 2 admitted first (sorted)", st.Tenants[0])
	}
	if st.Tenants[1].Tenant != "b" || st.Tenants[1].Admitted != 1 {
		t.Errorf("tenant b stats = %+v", st.Tenants[1])
	}
}
