// Package admission is the statement-level admission queue between the
// server's connection readers and the executor. The PRISMA paper sizes
// the machine for a cooperative workload; this package is what stands
// between that machine and an uncooperative one — offered load beyond
// capacity must degrade (bounded queueing, load shedding with a
// retryable error) instead of collapsing p99 for everyone.
//
// The model: a global in-flight cap bounds concurrent statements over
// the whole server, per-tenant concurrency tokens bound any one
// tenant's share, and statements that cannot run immediately wait in
// one of two priority FIFOs (interactive before batch). The queues are
// bounded globally and per tenant; a statement that would overflow
// either bound is shed with ErrOverloaded, which the server maps to
// the wire's coded retryable ErrCodeOverloaded so client.Retry's
// decorrelated backoff absorbs the shed.
package admission

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
)

// Fault points on the admission path, swept by E17: enqueue fires
// whenever a statement cannot be admitted immediately and must queue,
// shed fires whenever a statement is refused. An injected error at
// either point sheds the statement (retryably), so the sweep exercises
// the client-visible overload contract.
var (
	fpEnqueue = fault.Register("admission.enqueue")
	fpShed    = fault.Register("admission.shed")
)

// ErrOverloaded reports a shed statement: nothing ran, the client
// should back off and retry (or try another endpoint).
var ErrOverloaded = errors.New("admission: overloaded, retry later")

// Priority classes, ordered: lower dequeues first.
const (
	ClassInteractive = 0
	ClassBatch       = 1
)

// Config sizes a Controller.
type Config struct {
	// MaxInFlight caps concurrently executing statements server-wide
	// (default 64).
	MaxInFlight int
	// QueueDepth bounds the total number of waiting statements across
	// both priority classes (default 2*MaxInFlight).
	QueueDepth int
	// PerTenantQueue bounds one tenant's waiting statements, so a
	// flooding tenant cannot occupy the whole queue and starve others
	// into shedding (default max(1, QueueDepth/4)).
	PerTenantQueue int
	// PerTenantDefault caps one tenant's in-flight statements when the
	// user record doesn't set its own MaxConcurrent (default
	// MaxInFlight, i.e. no per-tenant bound).
	PerTenantDefault int
	// WaitTimeout sheds a statement still queued after this long, so
	// queue wait — and therefore admitted-statement latency — stays
	// bounded under standing overload (0 = wait forever).
	WaitTimeout time.Duration
}

type waiter struct {
	ch      chan struct{}
	tenant  string
	max     int
	granted bool // set under mu when a release hands this waiter the slot
}

type tenantState struct {
	inflight  int
	queued    int
	admitted  int64
	shed      int64
	waitTotal time.Duration
}

// Controller is the admission queue. The zero value is not usable;
// call New.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	inflight int
	queued   int
	queues   [2][]*waiter // ClassInteractive, ClassBatch
	tenants  map[string]*tenantState
	shed     int64
}

// New builds a Controller, applying Config defaults.
func New(cfg Config) *Controller {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.MaxInFlight
	}
	if cfg.PerTenantQueue <= 0 {
		cfg.PerTenantQueue = cfg.QueueDepth / 4
		if cfg.PerTenantQueue < 1 {
			cfg.PerTenantQueue = 1
		}
	}
	if cfg.PerTenantDefault <= 0 {
		cfg.PerTenantDefault = cfg.MaxInFlight
	}
	return &Controller{cfg: cfg, tenants: map[string]*tenantState{}}
}

// Grant is an admitted statement's slot; Release it when the statement
// finishes (success or error).
type Grant struct {
	c      *Controller
	tenant string
	// Wait is how long the statement queued before admission; the
	// server surfaces it as the Result's QueueTime.
	Wait time.Duration
}

// Release frees the slot and hands it to the highest-priority eligible
// waiter.
func (g *Grant) Release() {
	if g == nil || g.c == nil {
		return
	}
	g.c.release(g.tenant)
	g.c = nil
}

func (c *Controller) tenant(name string) *tenantState {
	ts := c.tenants[name]
	if ts == nil {
		ts = &tenantState{}
		c.tenants[name] = ts
	}
	return ts
}

// Acquire admits one statement for tenant at the given priority class,
// blocking in the bounded queue when the server is at capacity.
// maxConc overrides the tenant's concurrency tokens (0 = the
// controller default). The returned error is ErrOverloaded (possibly
// wrapped) when the statement was shed.
func (c *Controller) Acquire(tenant string, class int, maxConc int) (*Grant, error) {
	if class != ClassInteractive && class != ClassBatch {
		class = ClassBatch
	}
	if maxConc <= 0 {
		maxConc = c.cfg.PerTenantDefault
	}
	c.mu.Lock()
	ts := c.tenant(tenant)
	// Injected shed: the fault point forces the refusal path even with
	// capacity free, so E17 can prove sheds are retryable end to end.
	if out := fpShed.Eval(); out != nil && out.Err != nil {
		ts.shed++
		c.shed++
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrOverloaded, out.Err)
	}
	if c.inflight < c.cfg.MaxInFlight && ts.inflight < maxConc {
		c.inflight++
		ts.inflight++
		ts.admitted++
		c.mu.Unlock()
		return &Grant{c: c, tenant: tenant}, nil
	}
	// Slow path: queue, bounded globally and per tenant.
	if out := fpEnqueue.Eval(); out != nil && out.Err != nil {
		ts.shed++
		c.shed++
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrOverloaded, out.Err)
	}
	if c.queued >= c.cfg.QueueDepth || ts.queued >= c.cfg.PerTenantQueue {
		ts.shed++
		c.shed++
		c.mu.Unlock()
		return nil, fmt.Errorf("%w (queue full)", ErrOverloaded)
	}
	w := &waiter{ch: make(chan struct{}), tenant: tenant, max: maxConc}
	c.queues[class] = append(c.queues[class], w)
	c.queued++
	ts.queued++
	c.mu.Unlock()

	start := time.Now()
	var timeout <-chan time.Time
	var timer *time.Timer
	if c.cfg.WaitTimeout > 0 {
		timer = time.NewTimer(c.cfg.WaitTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case <-w.ch:
		wait := time.Since(start)
		c.mu.Lock()
		ts.admitted++
		ts.waitTotal += wait
		c.mu.Unlock()
		return &Grant{c: c, tenant: tenant, Wait: wait}, nil
	case <-timeout:
		c.mu.Lock()
		if w.granted {
			// The release raced the timer and already handed us the
			// slot; take the grant rather than leaking it.
			wait := time.Since(start)
			ts.admitted++
			ts.waitTotal += wait
			c.mu.Unlock()
			return &Grant{c: c, tenant: tenant, Wait: wait}, nil
		}
		c.removeWaiter(w)
		ts.queued--
		c.queued--
		ts.shed++
		c.shed++
		c.mu.Unlock()
		return nil, fmt.Errorf("%w (queued %s)", ErrOverloaded, c.cfg.WaitTimeout)
	}
}

// removeWaiter drops w from whichever queue holds it. Called under mu.
func (c *Controller) removeWaiter(w *waiter) {
	for class := range c.queues {
		q := c.queues[class]
		for i, cand := range q {
			if cand == w {
				c.queues[class] = append(q[:i], q[i+1:]...)
				return
			}
		}
	}
}

// release frees one slot and wakes the first eligible waiter,
// interactive queue first.
func (c *Controller) release(tenant string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inflight--
	if ts := c.tenants[tenant]; ts != nil {
		ts.inflight--
	}
	if c.inflight >= c.cfg.MaxInFlight {
		return
	}
	for class := range c.queues {
		q := c.queues[class]
		for i, w := range q {
			wts := c.tenant(w.tenant)
			if wts.inflight >= w.max {
				continue // tenant at its token cap; try the next waiter
			}
			c.queues[class] = append(q[:i], q[i+1:]...)
			c.queued--
			wts.queued--
			wts.inflight++
			c.inflight++
			w.granted = true
			close(w.ch)
			return
		}
	}
}

// TenantStats is one tenant's admission accounting snapshot.
type TenantStats struct {
	Tenant   string
	InFlight int
	Queued   int
	Admitted int64
	Shed     int64
	// AvgWait is the mean queue wait over the tenant's queued-then-
	// admitted statements.
	AvgWait time.Duration
}

// Stats is a Controller snapshot for SHOW ADMISSION.
type Stats struct {
	InFlight    int
	Queued      int
	MaxInFlight int
	QueueDepth  int
	Shed        int64
	Tenants     []TenantStats
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		InFlight:    c.inflight,
		Queued:      c.queued,
		MaxInFlight: c.cfg.MaxInFlight,
		QueueDepth:  c.cfg.QueueDepth,
		Shed:        c.shed,
	}
	for name, ts := range c.tenants {
		t := TenantStats{
			Tenant:   name,
			InFlight: ts.inflight,
			Queued:   ts.queued,
			Admitted: ts.admitted,
			Shed:     ts.shed,
		}
		if queuedAdmits := ts.admitted; queuedAdmits > 0 && ts.waitTotal > 0 {
			t.AvgWait = ts.waitTotal / time.Duration(queuedAdmits)
		}
		st.Tenants = append(st.Tenants, t)
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	return st
}
