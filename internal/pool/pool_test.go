package pool

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
)

func newRT(t *testing.T) *Runtime {
	t.Helper()
	m, err := machine.New(machine.Config{NumPEs: 16})
	if err != nil {
		t.Fatal(err)
	}
	return NewRuntime(m)
}

// echo spawns a process that replies to "echo" calls and counts "cast"
// messages.
func spawnEcho(t *testing.T, rt *Runtime, name string, pe int) *Process {
	t.Helper()
	p, err := rt.Spawn(name, pe, func(ctx *Context) error {
		for {
			msg, ok := ctx.Receive()
			if !ok {
				return nil
			}
			switch msg.Kind {
			case "echo":
				if err := ctx.Reply(msg, msg.Body, msg.Bytes, nil); err != nil {
					return err
				}
			case "fail":
				if err := ctx.Reply(msg, nil, 0, fmt.Errorf("requested failure")); err != nil {
					return err
				}
			case "die":
				return fmt.Errorf("told to die")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSpawnAndCall(t *testing.T) {
	rt := newRT(t)
	defer rt.StopAll()
	p := spawnEcho(t, rt, "echo-1", 3)
	if p.PE().ID() != 3 {
		t.Errorf("explicit allocation failed: PE %d", p.PE().ID())
	}
	got, err := rt.Call(0, p, "echo", "hello", 128)
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Errorf("Call returned %v", got)
	}
}

func TestCallChargesVirtualTime(t *testing.T) {
	rt := newRT(t)
	defer rt.StopAll()
	p := spawnEcho(t, rt, "echo-2", 5)
	m := rt.Machine()
	m.ResetClocks()
	if _, err := rt.Call(0, p, "echo", "x", 1024); err != nil {
		t.Fatal(err)
	}
	if m.PE(0).Clock() <= 0 {
		t.Error("caller PE clock must advance (send CPU + reply arrival)")
	}
	if m.PE(5).Clock() <= 0 {
		t.Error("callee PE clock must advance (arrival + reply CPU)")
	}
	// The caller's clock includes a round trip: at least twice the
	// one-way transfer of the payload.
	oneWay := m.Net().TransferTime(0, 5, 1024)
	if m.PE(0).Clock() < oneWay {
		t.Errorf("caller clock %v below one-way transfer %v", m.PE(0).Clock(), oneWay)
	}
}

func TestCallErrorPropagation(t *testing.T) {
	rt := newRT(t)
	defer rt.StopAll()
	p := spawnEcho(t, rt, "echo-3", 1)
	if _, err := rt.Call(0, p, "fail", nil, 0); err == nil || !strings.Contains(err.Error(), "requested failure") {
		t.Errorf("Call error = %v", err)
	}
}

func TestCalleeDiesWithoutReply(t *testing.T) {
	rt := newRT(t)
	defer rt.StopAll()
	p := spawnEcho(t, rt, "echo-4", 1)
	if _, err := rt.Call(0, p, "die", nil, 0); err == nil || !strings.Contains(err.Error(), "died") {
		t.Errorf("Call to dying process = %v", err)
	}
	if err := p.Join(); err == nil || !strings.Contains(err.Error(), "told to die") {
		t.Errorf("Join = %v", err)
	}
}

func TestSpawnValidation(t *testing.T) {
	rt := newRT(t)
	defer rt.StopAll()
	if _, err := rt.Spawn("x", -1, func(*Context) error { return nil }); err == nil {
		t.Error("negative PE should error")
	}
	if _, err := rt.Spawn("x", 99, func(*Context) error { return nil }); err == nil {
		t.Error("out-of-range PE should error")
	}
	spawnEcho(t, rt, "dup", 0)
	if _, err := rt.Spawn("dup", 1, func(*Context) error { return nil }); err == nil {
		t.Error("duplicate name should error")
	}
}

func TestLookupAndStop(t *testing.T) {
	rt := newRT(t)
	p := spawnEcho(t, rt, "worker", 2)
	if got, ok := rt.Lookup("worker"); !ok || got != p {
		t.Error("Lookup failed")
	}
	p.Stop()
	if err := p.Join(); err != nil {
		t.Errorf("clean stop returned %v", err)
	}
	if _, ok := rt.Lookup("worker"); ok {
		t.Error("stopped process still registered")
	}
	// Stopping twice is safe.
	p.Stop()
}

func TestSendAsync(t *testing.T) {
	rt := newRT(t)
	defer rt.StopAll()
	var mu sync.Mutex
	count := 0
	p, err := rt.Spawn("counter", 4, func(ctx *Context) error {
		for {
			msg, ok := ctx.Receive()
			if !ok {
				return nil
			}
			if msg.Kind == "inc" {
				mu.Lock()
				count++
				mu.Unlock()
			}
			if msg.Kind == "read" {
				mu.Lock()
				c := count
				mu.Unlock()
				if err := ctx.Reply(msg, c, 8, nil); err != nil {
					return err
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := rt.Send(0, p, "inc", nil, 16); err != nil {
			t.Fatal(err)
		}
	}
	got, err := rt.Call(0, p, "read", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.(int) != 10 {
		t.Errorf("count = %v", got)
	}
}

func TestInterProcessMessaging(t *testing.T) {
	rt := newRT(t)
	defer rt.StopAll()
	leaf := spawnEcho(t, rt, "leaf", 7)
	// A relay process that forwards calls to leaf — exercises
	// Context.Call and Context.Send between processes.
	relay, err := rt.Spawn("relay", 2, func(ctx *Context) error {
		for {
			msg, ok := ctx.Receive()
			if !ok {
				return nil
			}
			if msg.Kind == "relay" {
				res, err := ctx.Call(leaf, "echo", msg.Body, msg.Bytes)
				if rerr := ctx.Reply(msg, res, msg.Bytes, err); rerr != nil {
					return rerr
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.Call(0, relay, "relay", "ping", 64)
	if err != nil {
		t.Fatal(err)
	}
	if got != "ping" {
		t.Errorf("relayed call returned %v", got)
	}
}

func TestPanicIsCaptured(t *testing.T) {
	rt := newRT(t)
	p, err := rt.Spawn("bomb", 0, func(ctx *Context) error {
		panic("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Join(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Join after panic = %v", err)
	}
}

func TestStopAllTerminatesEverything(t *testing.T) {
	rt := newRT(t)
	for i := 0; i < 8; i++ {
		spawnEcho(t, rt, fmt.Sprintf("w-%d", i), i%4)
	}
	done := make(chan struct{})
	go func() {
		rt.StopAll()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("StopAll did not terminate")
	}
	if n := len(rt.Processes()); n != 0 {
		t.Errorf("%d processes survive StopAll", n)
	}
}

func TestSendToStoppingProcess(t *testing.T) {
	rt := newRT(t)
	p := spawnEcho(t, rt, "gone", 0)
	p.Stop()
	if err := p.Join(); err != nil {
		t.Fatal(err)
	}
	// Sends to a stopped process fail rather than hang (its mailbox may
	// be full and nobody drains it).
	for i := 0; i < MailboxSize+8; i++ {
		if err := rt.Send(1, p, "inc", nil, 8); err != nil {
			return // expected path: eventually rejected
		}
	}
	t.Error("sends to a stopped process should eventually fail")
}

func TestReplyToNonCall(t *testing.T) {
	rt := newRT(t)
	defer rt.StopAll()
	errCh := make(chan error, 1)
	p, err := rt.Spawn("strict", 0, func(ctx *Context) error {
		msg, ok := ctx.Receive()
		if !ok {
			return nil
		}
		errCh <- ctx.Reply(msg, nil, 0, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Send(1, p, "plain", nil, 8); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("Reply to a non-call should error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply-error received")
	}
}

// TestManyProcessesParallelism: the POOL-X property the DBMS relies on —
// hundreds of cheap processes spread over PEs, all making progress.
func TestManyProcessesParallelism(t *testing.T) {
	rt := newRT(t)
	defer rt.StopAll()
	const n = 200
	procs := make([]*Process, n)
	for i := 0; i < n; i++ {
		procs[i] = spawnEcho(t, rt, fmt.Sprintf("p-%d", i), i%16)
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i, p := range procs {
		wg.Add(1)
		go func(i int, p *Process) {
			defer wg.Done()
			got, err := rt.Call(i%16, p, "echo", i, 32)
			if err != nil {
				errs <- err
				return
			}
			if got.(int) != i {
				errs <- fmt.Errorf("process %d echoed %v", i, got)
			}
		}(i, p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
