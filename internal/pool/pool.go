// Package pool is the POOL-X runtime substrate (paper §3.1). POOL-X's
// programming model is "a collection of dynamically created processes"
// that "communicate via message-passing only, i.e. no shared memory",
// with "explicit allocation of the dynamically created processes onto
// processing elements".
//
// The reproduction maps a POOL-X process onto a goroutine with a mailbox.
// Processes are spawned onto an explicit processing element of the
// simulated machine; every message charges sender CPU and network
// transfer time to the virtual clocks, so the placement decisions the
// paper emphasizes ("a proper balance between storage, processing, and
// communication") have measurable cost.
package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
)

// ProcessID identifies a process for the lifetime of a Runtime.
type ProcessID int64

// Message is one inter-process message.
type Message struct {
	From     ProcessID
	Kind     string
	Body     any
	Bytes    int           // simulated wire size
	ArriveAt time.Duration // virtual arrival time at the receiver's PE

	reply chan reply // non-nil for Call-style requests
}

type reply struct {
	body  any
	bytes int
	err   error
	srcPE int
	sent  time.Duration
}

// Body is a process's main function. It should loop on ctx.Receive and
// return when Receive reports shutdown.
type Body func(ctx *Context) error

// Process is a POOL-X-style process: a mailbox plus a goroutine pinned to
// a processing element.
type Process struct {
	id      ProcessID
	name    string
	pe      *machine.PE
	rt      *Runtime
	mailbox chan Message
	quit    chan struct{}
	done    chan struct{}
	err     atomic.Pointer[error]
	stopped atomic.Bool
}

// ID returns the process id.
func (p *Process) ID() ProcessID { return p.id }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// PE returns the processing element the process was allocated to.
func (p *Process) PE() *machine.PE { return p.pe }

// Err returns the error the body exited with, if it has exited.
func (p *Process) Err() error {
	if e := p.err.Load(); e != nil {
		return *e
	}
	return nil
}

// Stop asks the process to shut down; Receive will report it.
func (p *Process) Stop() {
	if p.stopped.CompareAndSwap(false, true) {
		close(p.quit)
	}
}

// Join blocks until the process body has returned.
func (p *Process) Join() error {
	<-p.done
	return p.Err()
}

// Runtime manages processes over a simulated machine.
type Runtime struct {
	m      *machine.Machine
	nextID atomic.Int64

	mu     sync.Mutex
	byID   map[ProcessID]*Process
	byName map[string]*Process
	wg     sync.WaitGroup
}

// NewRuntime builds a Runtime over a machine.
func NewRuntime(m *machine.Machine) *Runtime {
	return &Runtime{
		m:      m,
		byID:   map[ProcessID]*Process{},
		byName: map[string]*Process{},
	}
}

// Machine returns the underlying simulated machine.
func (rt *Runtime) Machine() *machine.Machine { return rt.m }

// MailboxSize is the buffered capacity of a process mailbox. Sends past
// it block: natural backpressure, as in a bounded POOL-X channel.
const MailboxSize = 256

// Spawn creates a process named name on processing element pe and starts
// its body. Names must be unique among live processes.
func (rt *Runtime) Spawn(name string, pe int, body Body) (*Process, error) {
	if pe < 0 || pe >= rt.m.NumPEs() {
		return nil, fmt.Errorf("pool: PE %d out of range [0,%d)", pe, rt.m.NumPEs())
	}
	p := &Process{
		id:      ProcessID(rt.nextID.Add(1)),
		name:    name,
		pe:      rt.m.PE(pe),
		rt:      rt,
		mailbox: make(chan Message, MailboxSize),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	rt.mu.Lock()
	if name != "" {
		if _, dup := rt.byName[name]; dup {
			rt.mu.Unlock()
			return nil, fmt.Errorf("pool: process %q already exists", name)
		}
		rt.byName[name] = p
	}
	rt.byID[p.id] = p
	rt.wg.Add(1)
	rt.mu.Unlock()

	go func() {
		defer rt.wg.Done()
		defer close(p.done)
		defer func() {
			if r := recover(); r != nil {
				err := fmt.Errorf("pool: process %q panicked: %v", p.name, r)
				p.err.Store(&err)
			}
			rt.mu.Lock()
			delete(rt.byID, p.id)
			if p.name != "" && rt.byName[p.name] == p {
				delete(rt.byName, p.name)
			}
			rt.mu.Unlock()
		}()
		ctx := &Context{p: p}
		if err := body(ctx); err != nil {
			p.err.Store(&err)
		}
	}()
	return p, nil
}

// Lookup finds a live process by name.
func (rt *Runtime) Lookup(name string) (*Process, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	p, ok := rt.byName[name]
	return p, ok
}

// Processes returns a snapshot of live processes.
func (rt *Runtime) Processes() []*Process {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Process, 0, len(rt.byID))
	for _, p := range rt.byID {
		out = append(out, p)
	}
	return out
}

// StopAll stops every live process and waits for them to exit.
func (rt *Runtime) StopAll() {
	for _, p := range rt.Processes() {
		p.Stop()
	}
	rt.wg.Wait()
}

// send delivers msg to p, charging virtual costs from srcPE.
func (rt *Runtime) send(srcPE int, p *Process, msg Message) error {
	msg.ArriveAt = rt.m.Send(srcPE, p.pe.ID(), msg.Bytes)
	select {
	case p.mailbox <- msg:
		return nil
	case <-p.quit:
		return fmt.Errorf("pool: process %q is stopping", p.name)
	}
}

// Send delivers an asynchronous message from a non-process context (e.g.
// the global coordinator) running on srcPE.
func (rt *Runtime) Send(srcPE int, to *Process, kind string, body any, bytes int) error {
	return rt.send(srcPE, to, Message{Kind: kind, Body: body, Bytes: bytes})
}

// Call performs a synchronous rendezvous from srcPE: it sends a request
// and blocks until the callee replies (POOL-X method-call style). It
// returns the reply body and charges both message directions.
func (rt *Runtime) Call(srcPE int, to *Process, kind string, body any, bytes int) (any, error) {
	msg := Message{Kind: kind, Body: body, Bytes: bytes, reply: make(chan reply, 1)}
	if err := rt.send(srcPE, to, msg); err != nil {
		return nil, err
	}
	select {
	case r := <-msg.reply:
		if r.err != nil {
			return nil, r.err
		}
		// Charge the reply transfer to the caller's clock (and the
		// machine's cross-PE byte meter).
		rt.m.Arrive(r.srcPE, srcPE, r.bytes, r.sent)
		return r.body, nil
	case <-to.done:
		// The callee exited without replying.
		if err := to.Err(); err != nil {
			return nil, fmt.Errorf("pool: callee %q died: %w", to.name, err)
		}
		return nil, fmt.Errorf("pool: callee %q exited without reply", to.name)
	}
}

// CallSpec is one request of a CallAll batch.
type CallSpec struct {
	To    *Process
	Kind  string
	Body  any
	Bytes int
}

// CallAll performs a fan-out of synchronous requests from srcPE. All
// departures are stamped on the sender's clock *before* any reply is
// awaited, so simulated time is deterministic regardless of host
// goroutine scheduling (a request's start must not depend on another
// request's reply). Results and errors are returned per spec; the
// caller's clock advances to the latest reply arrival.
func (rt *Runtime) CallAll(srcPE int, specs []CallSpec) ([]any, []error) {
	results := make([]any, len(specs))
	errs := make([]error, len(specs))
	msgs := make([]Message, len(specs))
	// Phase 1: charge sender CPU sequentially and stamp arrivals.
	for i, sp := range specs {
		msg := Message{Kind: sp.Kind, Body: sp.Body, Bytes: sp.Bytes, reply: make(chan reply, 1)}
		msg.ArriveAt = rt.m.Send(srcPE, sp.To.pe.ID(), sp.Bytes)
		msgs[i] = msg
	}
	// Phase 2: deliver and await replies concurrently.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var maxArrive time.Duration
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, p *Process, msg Message) {
			defer wg.Done()
			select {
			case p.mailbox <- msg:
			case <-p.quit:
				errs[i] = fmt.Errorf("pool: process %q is stopping", p.name)
				return
			}
			select {
			case r := <-msg.reply:
				if r.err != nil {
					errs[i] = r.err
					return
				}
				arrive := r.sent + rt.m.Net().TransferTime(r.srcPE, srcPE, r.bytes)
				rt.m.CountReplyBytes(r.srcPE, srcPE, r.bytes)
				mu.Lock()
				if arrive > maxArrive {
					maxArrive = arrive
				}
				mu.Unlock()
				results[i] = r.body
			case <-p.done:
				if err := p.Err(); err != nil {
					errs[i] = fmt.Errorf("pool: callee %q died: %w", p.name, err)
				} else {
					errs[i] = fmt.Errorf("pool: callee %q exited without reply", p.name)
				}
			}
		}(i, sp.To, msgs[i])
	}
	wg.Wait()
	rt.m.PE(srcPE).AdvanceTo(maxArrive)
	return results, errs
}

// CallEach is CallAll for pipelined consumption: every departure is
// stamped on the sender's clock up front (the same determinism
// guarantee — no request's start depends on another's reply) and every
// request is delivered immediately, but replies are collected by the
// returned wait functions, one per spec, so the caller can consume
// early results while later requests are still being served. Each wait
// function advances the caller's clock to its own reply's arrival;
// call each exactly once.
func (rt *Runtime) CallEach(srcPE int, specs []CallSpec) []func() (any, error) {
	// Phase 1: charge sender CPU sequentially and stamp arrivals.
	msgs := make([]Message, len(specs))
	for i, sp := range specs {
		msg := Message{Kind: sp.Kind, Body: sp.Body, Bytes: sp.Bytes, reply: make(chan reply, 1)}
		msg.ArriveAt = rt.m.Send(srcPE, sp.To.pe.ID(), sp.Bytes)
		msgs[i] = msg
	}
	// Phase 2: deliver now; reply collection is deferred to the waits.
	waits := make([]func() (any, error), len(specs))
	for i, sp := range specs {
		p, msg := sp.To, msgs[i]
		sent := make(chan error, 1)
		go func() {
			select {
			case p.mailbox <- msg:
				sent <- nil
			case <-p.quit:
				sent <- fmt.Errorf("pool: process %q is stopping", p.name)
			}
		}()
		waits[i] = func() (any, error) {
			if err := <-sent; err != nil {
				return nil, err
			}
			select {
			case r := <-msg.reply:
				if r.err != nil {
					return nil, r.err
				}
				rt.m.Arrive(r.srcPE, srcPE, r.bytes, r.sent)
				return r.body, nil
			case <-p.done:
				if err := p.Err(); err != nil {
					return nil, fmt.Errorf("pool: callee %q died: %w", p.name, err)
				}
				return nil, fmt.Errorf("pool: callee %q exited without reply", p.name)
			}
		}
	}
	return waits
}

// Context is a process's handle on itself and the runtime.
type Context struct {
	p *Process
}

// Self returns the running process.
func (ctx *Context) Self() *Process { return ctx.p }

// PE returns the processing element the process runs on.
func (ctx *Context) PE() *machine.PE { return ctx.p.pe }

// Runtime returns the owning runtime.
func (ctx *Context) Runtime() *Runtime { return ctx.p.rt }

// Charge adds CPU time to the process's PE clock.
func (ctx *Context) Charge(d time.Duration) { ctx.p.pe.Advance(d) }

// Receive blocks for the next message. ok is false when the process has
// been stopped and should return from its body. The PE clock advances to
// the message's virtual arrival time.
func (ctx *Context) Receive() (Message, bool) {
	select {
	case <-ctx.p.quit:
		// Drain anything already delivered before quitting? POOL-X
		// semantics: stop is immediate; unprocessed messages are lost.
		return Message{}, false
	case msg := <-ctx.p.mailbox:
		ctx.p.pe.AdvanceTo(msg.ArriveAt)
		return msg, true
	}
}

// Reply answers a Call-style request. Replying to a non-Call message is
// an error. The reply transfer is charged when the caller receives it.
func (ctx *Context) Reply(msg Message, body any, bytes int, err error) error {
	if msg.reply == nil {
		return fmt.Errorf("pool: message %q is not a call", msg.Kind)
	}
	// Sender-side CPU for marshalling the reply.
	ctx.p.pe.Advance(ctx.p.rt.m.Cost().MsgCost(bytes))
	msg.reply <- reply{body: body, bytes: bytes, err: err, srcPE: ctx.p.pe.ID(), sent: ctx.p.pe.Clock()}
	return nil
}

// Send delivers an asynchronous message to another process.
func (ctx *Context) Send(to *Process, kind string, body any, bytes int) error {
	msg := Message{From: ctx.p.id, Kind: kind, Body: body, Bytes: bytes}
	return ctx.p.rt.send(ctx.p.pe.ID(), to, msg)
}

// Call performs a synchronous request to another process.
func (ctx *Context) Call(to *Process, kind string, body any, bytes int) (any, error) {
	return ctx.p.rt.Call(ctx.p.pe.ID(), to, kind, body, bytes)
}
