package repl

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fragment"
	"repro/internal/wire"
)

// ReplicaConfig tunes a replica runtime.
type ReplicaConfig struct {
	// Engine is the local engine to mirror into (required). The runtime
	// marks it read-only and installs its promotion hook.
	Engine *core.Engine
	// Primary is the primary server's address (required).
	Primary string
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// RetryBackoff spaces reconnection attempts (default 100ms, with
	// jitter so a herd of replicas decorrelates).
	RetryBackoff time.Duration
	// Logf receives stream-level diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Replica mirrors a primary into a local engine: it subscribes over
// the wire protocol, appends shipped bytes to the local fragment logs,
// applies them through the fragment processes, and advances the MVCC
// watermark on each consistent status. It reconnects on stream loss,
// resuming from the durable log positions, until stopped or promoted.
type Replica struct {
	eng     *core.Engine
	primary string
	dialTO  time.Duration
	backoff time.Duration
	logf    func(string, ...any)

	mu      sync.Mutex
	conn    net.Conn
	stopped bool

	// streamMu serializes frame application against CrashRecover and
	// promotion, so neither observes a half-applied frame.
	streamMu sync.Mutex

	staleRefused atomic.Int64
	wg           sync.WaitGroup
}

// StartReplica marks the engine read-only, installs the PROMOTE hook
// and starts the subscription loop.
func StartReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Engine == nil || cfg.Primary == "" {
		return nil, fmt.Errorf("repl: ReplicaConfig needs Engine and Primary")
	}
	dialTO := cfg.DialTimeout
	if dialTO <= 0 {
		dialTO = 5 * time.Second
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r := &Replica{
		eng:     cfg.Engine,
		primary: cfg.Primary,
		dialTO:  dialTO,
		backoff: backoff,
		logf:    logf,
	}
	r.eng.SetReadOnly(true)
	r.eng.SetPromoteHook(func() error { return r.Promote() })
	r.wg.Add(1)
	go r.run()
	return r, nil
}

// Primary returns the address this replica subscribes to.
func (r *Replica) Primary() string { return r.primary }

// Watermark returns the consistent replication watermark reads serve
// at.
func (r *Replica) Watermark() uint64 { return r.eng.ReplWatermark() }

// StaleEpochRefusals counts frames refused because they carried an
// epoch below this replica's — evidence of a fenced stale primary.
func (r *Replica) StaleEpochRefusals() int64 { return r.staleRefused.Load() }

// Stop ends the subscription loop and waits for it.
func (r *Replica) Stop() {
	r.mu.Lock()
	r.stopped = true
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// Promote fails this replica over to primary: the stream stops, every
// in-flight shipped transaction resolves atomically across fragments
// (roll forward when its commit marker reached any fragment, presumed
// abort otherwise), the epoch bumps to fence the old primary, and the
// engine reopens for writes.
func (r *Replica) Promote() error {
	r.Stop()
	r.streamMu.Lock()
	defer r.streamMu.Unlock()
	committed, aborted, err := r.eng.PromoteApply()
	if err != nil {
		return fmt.Errorf("repl: promote: %w", err)
	}
	r.eng.SetEpoch(r.eng.Epoch() + 1)
	r.eng.SetReadOnly(false)
	r.logf("repl: promoted to primary at epoch %d (rolled forward %d, presumed-aborted %d)",
		r.eng.Epoch(), committed, aborted)
	return nil
}

// CrashRecover simulates a replica crash and restart: the stream
// drops mid-batch, volatile fragment state vanishes, and the engine
// replays from its own durable checkpoints and logs up to the durable
// status watermark. The subscription loop then resubscribes from the
// replayed durable positions — shipped bytes the replica already
// holds are deduplicated by offset, so re-application is idempotent.
func (r *Replica) CrashRecover() error {
	r.mu.Lock()
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
	r.streamMu.Lock()
	defer r.streamMu.Unlock()
	for _, td := range r.eng.TableDefs() {
		if err := r.eng.CrashTable(td.Name); err != nil {
			return err
		}
	}
	_, err := r.eng.RecoverReplica()
	return err
}

// run is the reconnecting subscription loop.
func (r *Replica) run() {
	defer r.wg.Done()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		r.mu.Lock()
		stopped := r.stopped
		r.mu.Unlock()
		if stopped {
			return
		}
		if err := r.streamOnce(); err != nil {
			r.logf("repl: stream to %s: %v", r.primary, err)
		}
		r.mu.Lock()
		stopped = r.stopped
		r.mu.Unlock()
		if stopped {
			return
		}
		// Jittered backoff so a herd of replicas re-dials decorrelated.
		time.Sleep(r.backoff/2 + time.Duration(rng.Int63n(int64(r.backoff))))
	}
}

// streamOnce runs one subscription: dial, handshake, subscribe from
// the durable positions, then apply frames until the stream breaks.
func (r *Replica) streamOnce() error {
	conn, err := net.DialTimeout("tcp", r.primary, r.dialTO)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		conn.Close()
		return nil
	}
	r.conn = conn
	r.mu.Unlock()
	defer func() {
		conn.Close()
		r.mu.Lock()
		if r.conn == conn {
			r.conn = nil
		}
		r.mu.Unlock()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 32<<10)
	if err := wire.WriteFrame(bw, wire.TypeHello, wire.EncodeHello()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	typ, payload, err := wire.ReadFrame(br, wire.DefaultMaxFrame)
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	if typ == wire.TypeError {
		_, msg := wire.DecodeError(payload)
		return fmt.Errorf("handshake refused: %s", msg)
	}
	if typ != wire.TypeHelloOK || len(payload) < 1 || int(payload[0]) != wire.Version {
		return fmt.Errorf("handshake: unexpected reply type 0x%02x", typ)
	}
	ex, err := wire.DecodeHelloOKExtra(payload)
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	if ex.Role != wire.RolePrimary {
		return fmt.Errorf("endpoint %s is not a primary", r.primary)
	}
	if ex.Epoch < r.eng.Epoch() {
		r.staleRefused.Add(1)
		return fmt.Errorf("refusing stale primary at epoch %d (ours is %d)", ex.Epoch, r.eng.Epoch())
	}
	if ex.Epoch > r.eng.Epoch() {
		r.eng.SetEpoch(ex.Epoch)
	}

	sub := &wire.ReplSubscribe{Epoch: r.eng.Epoch(), Positions: positionsWire(r.eng.ReplPositions())}
	if err := wire.WriteFrame(bw, wire.TypeReplSubscribe, wire.EncodeReplSubscribe(sub)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	for {
		typ, payload, err := wire.ReadFrame(br, wire.DefaultMaxFrame)
		if err != nil {
			return err
		}
		if err := r.applyFrame(typ, payload); err != nil {
			return err
		}
	}
}

// applyFrame applies one stream frame under the stream mutex.
func (r *Replica) applyFrame(typ byte, payload []byte) error {
	r.streamMu.Lock()
	defer r.streamMu.Unlock()
	switch typ {
	case wire.TypeReplRecords:
		rec, err := wire.DecodeReplRecords(payload)
		if err != nil {
			return err
		}
		if rec.Epoch < r.eng.Epoch() {
			r.staleRefused.Add(1)
			return fmt.Errorf("refusing records at stale epoch %d (ours is %d)", rec.Epoch, r.eng.Epoch())
		}
		if rec.Kind == wire.ReplFullSync {
			_, err := r.eng.SyncFragment(rec.Log, rec.Ckpt, rec.Data, rec.Gen)
			return err
		}
		return r.eng.ApplyShipped(rec.Log, rec.Data, rec.Off)
	case wire.TypeReplStatus:
		st, err := wire.DecodeReplStatus(payload)
		if err != nil {
			return err
		}
		if st.Epoch < r.eng.Epoch() {
			r.staleRefused.Add(1)
			return fmt.Errorf("refusing status at stale epoch %d (ours is %d)", st.Epoch, r.eng.Epoch())
		}
		for _, td := range st.Tables {
			if err := r.eng.EnsureTable(core.TableDef{
				Name:       td.Name,
				Schema:     td.Schema,
				Strategy:   fragment.Strategy(td.Strategy),
				Column:     td.Column,
				N:          td.N,
				Bounds:     td.Bounds,
				PrimaryKey: td.PrimaryKey,
			}); err != nil {
				return err
			}
		}
		return r.eng.AdvanceReplica(st.Watermark)
	case wire.TypeError:
		_, msg := wire.DecodeError(payload)
		return fmt.Errorf("stream error from primary: %s", msg)
	default:
		return fmt.Errorf("unexpected stream frame type 0x%02x", typ)
	}
}

// positionsWire converts engine log positions to their wire form.
func positionsWire(ps []core.LogPosition) []wire.ReplPosition {
	out := make([]wire.ReplPosition, 0, len(ps))
	for _, p := range ps {
		out = append(out, wire.ReplPosition{Log: p.Log, Gen: p.Gen, Off: p.Off})
	}
	return out
}
