// Package repl implements WAL-shipping replication: a primary engine
// streams its fragments' raw log bytes to subscribed replicas, which
// append them to identically named local logs (so byte offsets align
// end to end) and apply them through their own fragment processes.
// Replicas serve MVCC snapshot reads at the primary's shipped
// watermark and refuse writes; an admin PROMOTE fails one over,
// fencing the old primary behind an epoch carried on every frame.
//
// The stream's unit is a batch: the source samples the primary's
// commit watermark W FIRST, then reads every log's new bytes, ships
// them as ReplRecords frames, and closes the batch with a ReplStatus
// carrying W. Because a commit marker lands durably in every
// participant log before the watermark passes its timestamp, the bytes
// of a batch are guaranteed to contain every commit at or below its
// status watermark on every log — the invariant the replica's
// deferred-commit application (see internal/ofm apply) builds on.
package repl

import (
	"bufio"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// SourceConfig tunes a primary's replication source.
type SourceConfig struct {
	// Engine is the primary engine whose logs ship (required).
	Engine *core.Engine
	// PollInterval bounds how long a quiet stream waits before
	// re-checking for new log bytes; commits kick subscribers
	// immediately, so this is only the idle heartbeat (default 25ms).
	PollInterval time.Duration
	// AckTimeout bounds how long a committing transaction waits for its
	// records to reach every live subscriber before being acknowledged
	// anyway (availability over strict semi-sync; default 2s).
	AckTimeout time.Duration
}

// Source is the primary side of the replication stream: a subscriber
// hub serving one ship loop per attached replica.
type Source struct {
	eng      *core.Engine
	interval time.Duration
	ackWait  time.Duration

	mu     sync.Mutex
	cond   *sync.Cond
	subs   map[*subscriber]struct{}
	closed bool
}

// subscriber is one attached replica's stream state.
type subscriber struct {
	kick    chan struct{} // commit signal (capacity 1)
	shipped uint64        // highest status watermark flushed, under Source.mu
}

// NewSource builds a replication source over a primary engine. Wire it
// into the commit path with eng.Txns().SetCommitWait(src.WaitShipped)
// to make commits semi-synchronous, and into the server with
// server.Config.Source so ReplSubscribe frames reach Serve.
func NewSource(cfg SourceConfig) *Source {
	interval := cfg.PollInterval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	ackWait := cfg.AckTimeout
	if ackWait <= 0 {
		ackWait = 2 * time.Second
	}
	s := &Source{
		eng:      cfg.Engine,
		interval: interval,
		ackWait:  ackWait,
		subs:     map[*subscriber]struct{}{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Close detaches every subscriber wait and releases pending commit
// acknowledgments. Ship loops end when their connections close.
func (s *Source) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Subscribers reports the number of attached replicas.
func (s *Source) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// WaitShipped blocks until every replica attached right now has been
// shipped (flushed) a status watermark covering ts, the ack timeout
// passes, or the source closes. Installed as the transaction manager's
// commit-wait hook, it makes commits semi-synchronous: an acknowledged
// commit's records have left for every live replica, so failover to
// one cannot lose it. With no subscribers it returns immediately.
func (s *Source) WaitShipped(ts uint64) {
	s.mu.Lock()
	for sub := range s.subs {
		select {
		case sub.kick <- struct{}{}:
		default:
		}
	}
	if s.shippedLocked(ts) || s.closed {
		s.mu.Unlock()
		return
	}
	timer := time.AfterFunc(s.ackWait, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	deadline := time.Now().Add(s.ackWait)
	for !s.shippedLocked(ts) && !s.closed && time.Now().Before(deadline) {
		s.cond.Wait()
	}
	s.mu.Unlock()
	timer.Stop()
}

// shippedLocked reports whether every attached subscriber has flushed
// a status watermark at or past ts. Caller holds s.mu.
func (s *Source) shippedLocked(ts uint64) bool {
	for sub := range s.subs {
		if sub.shipped < ts {
			return false
		}
	}
	return true
}

// Serve runs one subscriber's ship loop on the server connection that
// received its ReplSubscribe frame, blocking until the connection dies
// or the source closes. Implements server.ReplSource.
func (s *Source) Serve(bw *bufio.Writer, payload []byte) error {
	sub, err := wire.DecodeReplSubscribe(payload)
	if err != nil {
		return err
	}
	if myEpoch := s.eng.Epoch(); sub.Epoch > myEpoch {
		// The subscriber outlived a failover this engine never saw: this
		// engine is the stale primary and must not feed it.
		msg := fmt.Sprintf("repl: subscriber epoch %d is ahead of primary epoch %d (stale primary)", sub.Epoch, myEpoch)
		wire.WriteFrame(bw, wire.TypeError, wire.EncodeError(wire.ErrCodeGeneric, msg))
		bw.Flush()
		return fmt.Errorf("%s", msg)
	}

	sb := &subscriber{kick: make(chan struct{}, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("repl: source closed")
	}
	s.subs[sb] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.subs, sb)
		// A departing subscriber releases commit waits blocked on it.
		s.cond.Broadcast()
		s.mu.Unlock()
	}()

	// The subscriber's view of each primary log's position.
	pos := map[string]wire.ReplPosition{}
	for _, p := range sub.Positions {
		pos[p.Log] = p
	}

	// Catalog handshake: a status with watermark 0 (advances nothing)
	// carrying every table definition, so the replica can build its
	// fragment layout before the first records arrive.
	if err := s.writeStatus(bw, 0, tableDefsWire(s.eng.TableDefs())); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		shippedAny, w, err := s.shipBatch(bw, pos)
		if err != nil {
			return err
		}
		s.mu.Lock()
		if w > sb.shipped {
			sb.shipped = w
			s.cond.Broadcast()
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil
		}
		if shippedAny {
			continue // drain a burst without waiting
		}
		select {
		case <-sb.kick:
		case <-ticker.C:
		}
	}
}

// shipBatch ships one batch: watermark sample, then every log's new
// bytes, then the closing status. Reports whether any record bytes
// went out (a caller's cue to loop immediately).
func (s *Source) shipBatch(bw *bufio.Writer, pos map[string]wire.ReplPosition) (bool, uint64, error) {
	w := s.eng.Txns().Watermark()
	epoch := s.eng.Epoch()
	logs := s.eng.ShipPositions()
	shipped := false
	// A log the subscriber has never seen may belong to a table created
	// after its catalog handshake: re-ship the catalog (status advancing
	// nothing) ahead of the new log's bytes, so the replica can build
	// the fragment before records for it arrive instead of breaking the
	// stream and converging through a reconnect.
	for _, l := range logs {
		if _, known := pos[l.Log]; !known {
			if err := s.writeStatus(bw, 0, tableDefsWire(s.eng.TableDefs())); err != nil {
				return shipped, 0, err
			}
			break
		}
	}
	for _, l := range logs {
		p, known := pos[l.Log]
		if !known || p.Gen != l.Gen || p.Off > l.Off {
			// First contact, a checkpoint truncation since the offset was
			// learned, or an impossible offset: resync the fragment whole.
			ckpt, logBytes, gen, err := s.eng.FragSyncImage(l.Log)
			if err != nil {
				return shipped, 0, err
			}
			rec := &wire.ReplRecords{Epoch: epoch, Log: l.Log, Kind: wire.ReplFullSync,
				Gen: gen, Off: 0, Ckpt: ckpt, Data: logBytes}
			if err := wire.WriteFrame(bw, wire.TypeReplRecords, wire.EncodeReplRecords(rec)); err != nil {
				return shipped, 0, err
			}
			pos[l.Log] = wire.ReplPosition{Log: l.Log, Gen: gen, Off: int64(len(logBytes))}
			shipped = true
			continue
		}
		data, size, gen, err := s.eng.ShipLog(l.Log, p.Off)
		if err != nil {
			return shipped, 0, err
		}
		if gen != p.Gen {
			// Raced a checkpoint between the position listing and the
			// read; next batch's mismatch check resyncs it.
			continue
		}
		if len(data) == 0 {
			continue
		}
		rec := &wire.ReplRecords{Epoch: epoch, Log: l.Log, Kind: wire.ReplIncremental,
			Gen: gen, Off: p.Off, Data: data}
		if err := wire.WriteFrame(bw, wire.TypeReplRecords, wire.EncodeReplRecords(rec)); err != nil {
			return shipped, 0, err
		}
		pos[l.Log] = wire.ReplPosition{Log: l.Log, Gen: gen, Off: size}
		shipped = true
	}
	if err := s.writeStatus(bw, w, nil); err != nil {
		return shipped, 0, err
	}
	return shipped, w, bw.Flush()
}

// writeStatus writes one ReplStatus frame.
func (s *Source) writeStatus(bw *bufio.Writer, w uint64, tables []wire.ReplTableDef) error {
	st := &wire.ReplStatus{Epoch: s.eng.Epoch(), Watermark: w, Tables: tables}
	return wire.WriteFrame(bw, wire.TypeReplStatus, wire.EncodeReplStatus(st))
}

// tableDefsWire converts engine table definitions to their wire form.
func tableDefsWire(defs []core.TableDef) []wire.ReplTableDef {
	out := make([]wire.ReplTableDef, 0, len(defs))
	for _, d := range defs {
		out = append(out, wire.ReplTableDef{
			Name:       d.Name,
			Schema:     d.Schema,
			Strategy:   byte(d.Strategy),
			Column:     d.Column,
			N:          d.N,
			Bounds:     d.Bounds,
			PrimaryKey: d.PrimaryKey,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
