package repl

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/wire"
)

// node is one engine+server endpoint in a test deployment.
type node struct {
	eng  *core.Engine
	srv  *server.Server
	src  *Source
	addr string
	done chan error
}

func startNode(t *testing.T, primaryAddr func() string) *node {
	t.Helper()
	eng, err := core.New(core.Config{NumPEs: 8, FaultDomain: &fault.Domain{}})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	src := NewSource(SourceConfig{Engine: eng, PollInterval: 2 * time.Millisecond})
	eng.Txns().SetCommitWait(src.WaitShipped)
	srv, err := server.New(server.Config{Engine: eng, Source: src, PrimaryAddr: primaryAddr})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	n := &node{eng: eng, srv: srv, src: src, addr: l.Addr().String(), done: make(chan error, 1)}
	go func() { n.done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		<-n.done
		src.Close()
		eng.Close()
	})
	return n
}

// waitWatermark blocks until the replica's watermark reaches ts.
func waitWatermark(t *testing.T, r *Replica, ts uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.Watermark() < ts {
		if time.Now().After(deadline) {
			t.Fatalf("replica watermark stuck at %d, want >= %d", r.Watermark(), ts)
		}
		time.Sleep(time.Millisecond)
	}
}

func startReplicaNode(t *testing.T, primary *node) (*node, *Replica) {
	t.Helper()
	n := startNode(t, nil)
	// Rebuild the server with the primary address advertised; simpler:
	// the node's server already lacks PrimaryAddr — acceptable for
	// tests that don't assert the advertised address.
	r, err := StartReplica(ReplicaConfig{
		Engine:       n.eng,
		Primary:      primary.addr,
		RetryBackoff: 10 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("replica: %v", err)
	}
	t.Cleanup(r.Stop)
	return n, r
}

func mustExec(t *testing.T, c *client.Client, sql string) {
	t.Helper()
	if _, err := c.Exec(sql); err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
}

func sumBalances(t *testing.T, c *client.Client) int64 {
	t.Helper()
	rel, err := c.Query("SELECT SUM(balance) FROM acct")
	if err != nil {
		t.Fatalf("sum query: %v", err)
	}
	if len(rel.Tuples) != 1 {
		t.Fatalf("sum query returned %d rows", len(rel.Tuples))
	}
	return rel.Tuples[0][0].Int()
}

func TestReplicationStreamsCommits(t *testing.T) {
	primary := startNode(t, nil)
	_, rep := startReplicaNode(t, primary)

	pc, err := client.Dial(primary.addr)
	if err != nil {
		t.Fatalf("dial primary: %v", err)
	}
	defer pc.Close()
	if pc.Role() != wire.RolePrimary {
		t.Fatalf("primary reports role %c", pc.Role())
	}
	mustExec(t, pc, "CREATE TABLE acct (id INT, balance INT, PRIMARY KEY(id)) FRAGMENT BY HASH(id) INTO 4 FRAGMENTS")
	for i := 0; i < 20; i++ {
		mustExec(t, pc, fmt.Sprintf("INSERT INTO acct VALUES (%d, 100)", i))
	}
	w := primary.eng.Txns().Watermark()
	if w == 0 {
		t.Fatalf("primary watermark never advanced")
	}
	waitWatermark(t, rep, w)
}

func TestReplicaServesReadsAndRefusesWrites(t *testing.T) {
	primary := startNode(t, nil)
	repNode, rep := startReplicaNode(t, primary)

	pc, err := client.Dial(primary.addr)
	if err != nil {
		t.Fatalf("dial primary: %v", err)
	}
	defer pc.Close()
	mustExec(t, pc, "CREATE TABLE acct (id INT, balance INT, PRIMARY KEY(id)) FRAGMENT BY HASH(id) INTO 4 FRAGMENTS")
	for i := 0; i < 20; i++ {
		mustExec(t, pc, fmt.Sprintf("INSERT INTO acct VALUES (%d, 100)", i))
	}
	waitWatermark(t, rep, primary.eng.Txns().Watermark())

	rc, err := client.Dial(repNode.addr)
	if err != nil {
		t.Fatalf("dial replica: %v", err)
	}
	defer rc.Close()
	if rc.Role() != wire.RoleReplica {
		t.Fatalf("replica reports role %c", rc.Role())
	}
	if got := sumBalances(t, rc); got != 2000 {
		t.Fatalf("replica sum = %d, want 2000", got)
	}

	// Writes are refused with the coded redirect.
	_, err = rc.Exec("UPDATE acct SET balance = 0 WHERE id = 1")
	if err == nil {
		t.Fatalf("replica accepted a write")
	}
	var se *client.ServerError
	if !asServerError(err, &se) || se.Code != wire.ErrCodeRedirect {
		t.Fatalf("replica write error = %v, want redirect code", err)
	}
	if !se.Retryable() {
		t.Fatalf("redirect should be retryable")
	}

	// The watermark-bounded staleness contract: updates become visible
	// once the watermark passes their commit.
	mustExec(t, pc, "UPDATE acct SET balance = 150 WHERE id = 3")
	waitWatermark(t, rep, primary.eng.Txns().Watermark())
	if got := sumBalances(t, rc); got != 2050 {
		t.Fatalf("replica sum after update = %d, want 2050", got)
	}
}

// TestDDLAfterAttachShipsInStream pins the in-stream catalog path: a
// table created after the replica's catalog handshake must reach it
// through the live stream (catalog re-shipped ahead of the new log's
// bytes), not by breaking the stream and converging on reconnect. The
// prohibitive retry backoff makes the reconnect path useless inside
// the test window, so only the in-stream path can pass.
func TestDDLAfterAttachShipsInStream(t *testing.T) {
	primary := startNode(t, nil)
	repNode := startNode(t, nil)
	rep, err := StartReplica(ReplicaConfig{
		Engine:       repNode.eng,
		Primary:      primary.addr,
		RetryBackoff: 30 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("replica: %v", err)
	}
	t.Cleanup(rep.Stop)

	pc, err := client.Dial(primary.addr)
	if err != nil {
		t.Fatalf("dial primary: %v", err)
	}
	defer pc.Close()
	// Let the subscribe handshake land first, so the CREATE below is
	// genuinely post-attach.
	deadline := time.Now().Add(5 * time.Second)
	for primary.src.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never attached")
		}
		time.Sleep(time.Millisecond)
	}

	mustExec(t, pc, "CREATE TABLE acct (id INT, balance INT, PRIMARY KEY(id)) FRAGMENT BY HASH(id) INTO 4 FRAGMENTS")
	for i := 0; i < 10; i++ {
		mustExec(t, pc, fmt.Sprintf("INSERT INTO acct VALUES (%d, 100)", i))
	}
	waitWatermark(t, rep, primary.eng.Txns().Watermark())

	rc, err := client.Dial(repNode.addr)
	if err != nil {
		t.Fatalf("dial replica: %v", err)
	}
	defer rc.Close()
	if got := sumBalances(t, rc); got != 1000 {
		t.Fatalf("replica sum = %d, want 1000", got)
	}
}

func asServerError(err error, out **client.ServerError) bool {
	se, ok := err.(*client.ServerError)
	if !ok {
		return false
	}
	*out = se
	return true
}

func TestTornStreamResubscribe(t *testing.T) {
	primary := startNode(t, nil)
	repNode, rep := startReplicaNode(t, primary)

	pc, err := client.Dial(primary.addr)
	if err != nil {
		t.Fatalf("dial primary: %v", err)
	}
	defer pc.Close()
	mustExec(t, pc, "CREATE TABLE acct (id INT, balance INT, PRIMARY KEY(id)) FRAGMENT BY HASH(id) INTO 4 FRAGMENTS")
	for i := 0; i < 10; i++ {
		mustExec(t, pc, fmt.Sprintf("INSERT INTO acct VALUES (%d, 100)", i))
	}
	waitWatermark(t, rep, primary.eng.Txns().Watermark())

	// Crash the replica mid-stream: the connection drops, volatile
	// state vanishes, and it replays from its own durable logs.
	if err := rep.CrashRecover(); err != nil {
		t.Fatalf("crash-recover: %v", err)
	}

	// More commits while the replica reconnects: the resubscribe must
	// resume from the durable offsets and re-apply idempotently.
	for i := 10; i < 20; i++ {
		mustExec(t, pc, fmt.Sprintf("INSERT INTO acct VALUES (%d, 100)", i))
	}
	waitWatermark(t, rep, primary.eng.Txns().Watermark())

	rc, err := client.Dial(repNode.addr)
	if err != nil {
		t.Fatalf("dial replica: %v", err)
	}
	defer rc.Close()
	if got := sumBalances(t, rc); got != 2000 {
		t.Fatalf("replica sum after torn stream = %d, want 2000 (duplicate or lost apply)", got)
	}
}

func TestPromoteFencesStalePrimary(t *testing.T) {
	primary := startNode(t, nil)
	repNode, rep := startReplicaNode(t, primary)

	pc, err := client.Dial(primary.addr)
	if err != nil {
		t.Fatalf("dial primary: %v", err)
	}
	defer pc.Close()
	mustExec(t, pc, "CREATE TABLE acct (id INT, balance INT, PRIMARY KEY(id)) FRAGMENT BY HASH(id) INTO 4 FRAGMENTS")
	for i := 0; i < 10; i++ {
		mustExec(t, pc, fmt.Sprintf("INSERT INTO acct VALUES (%d, 100)", i))
	}
	waitWatermark(t, rep, primary.eng.Txns().Watermark())

	// Promote via the admin statement on the replica's own endpoint.
	rc, err := client.Dial(repNode.addr)
	if err != nil {
		t.Fatalf("dial replica: %v", err)
	}
	defer rc.Close()
	res, err := rc.Exec("PROMOTE")
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if !strings.Contains(res.Msg, "epoch 2") {
		t.Fatalf("promote message = %q, want epoch 2", res.Msg)
	}
	if repNode.eng.IsReadOnly() {
		t.Fatalf("promoted engine still read-only")
	}

	// The promoted node accepts writes on a fresh connection (the old
	// one learned its role at handshake; a real client re-probes).
	rc2, err := client.Dial(repNode.addr)
	if err != nil {
		t.Fatalf("redial promoted: %v", err)
	}
	defer rc2.Close()
	if rc2.Role() != wire.RolePrimary {
		t.Fatalf("promoted node reports role %c", rc2.Role())
	}
	mustExec(t, rc2, "INSERT INTO acct VALUES (100, 55)")
	if got := sumBalances(t, rc2); got != 1055 {
		t.Fatalf("promoted sum = %d, want 1055", got)
	}

	// The fencing: resubscribing to the promoted node with a stale
	// epoch is what the old primary's replicas would do — but the old
	// PRIMARY trying to serve the promoted node is refused. Simulate
	// the stale primary shipping to the promoted node by subscribing
	// the promoted node back to the old primary: its higher epoch must
	// refuse the old primary's stream.
	refusedBefore := rep.StaleEpochRefusals()
	r2, err := StartReplica(ReplicaConfig{
		Engine:       repNode.eng,
		Primary:      primary.addr,
		RetryBackoff: 5 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("resubscribe: %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for r2.StaleEpochRefusals() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r2.Stop()
	repNode.eng.SetReadOnly(false) // StartReplica flipped it; restore
	if r2.StaleEpochRefusals() == 0 {
		t.Fatalf("promoted node never refused the stale primary (refusals before: %d)", refusedBefore)
	}
	// The stale primary's data must not have leaked in: the promoted
	// node's row 100 write is its own, sum unchanged.
	if got := sumBalances(t, rc2); got != 1055 {
		t.Fatalf("sum after fencing = %d, want 1055", got)
	}
}
