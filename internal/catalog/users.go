// Multi-tenant identity: a catalog-backed user table with per-table
// grants. Secrets are hashed at rest (salted SHA-256) and compared in
// constant time; grants are a privilege bitmask per table. The catalog
// is the natural home — users and grants are data-dictionary entries
// exactly like schemas and placements, and sessions already hold a
// catalog reference for planning.
//
// Authentication is opt-in: a catalog with no users accepts every
// connection as a local administrator (the embedded / bootstrap mode).
// Creating the first user arms the front door.
package catalog

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"sort"
	"sync"
)

// Priv is a per-table privilege bitmask.
type Priv uint8

const (
	PrivSelect Priv = 1 << iota
	PrivInsert
	PrivUpdate
	PrivDelete

	// PrivAll grants every statement privilege on a table, including
	// dropping it.
	PrivAll = PrivSelect | PrivInsert | PrivUpdate | PrivDelete
)

// String renders the bitmask as the GRANT statement's privilege list.
func (p Priv) String() string {
	if p == PrivAll {
		return "ALL"
	}
	var parts []string
	for _, e := range []struct {
		bit  Priv
		name string
	}{{PrivSelect, "SELECT"}, {PrivInsert, "INSERT"}, {PrivUpdate, "UPDATE"}, {PrivDelete, "DELETE"}} {
		if p&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "NONE"
	}
	out := parts[0]
	for _, s := range parts[1:] {
		out += "," + s
	}
	return out
}

// Priority classes for admission control. Interactive statements are
// dequeued before batch statements when capacity frees up.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// User is one tenant identity: hashed credentials, admission-control
// attributes, and per-table grants.
type User struct {
	Name string
	// Priority is the admission class (PriorityInteractive or
	// PriorityBatch).
	Priority string
	// MaxConcurrent caps the user's in-flight statements under
	// admission control (0 = the controller's default).
	MaxConcurrent int
	// MemBudget caps the working memory one statement may materialize
	// in sorts, aggregates and join builds, in bytes (0 = unlimited).
	MemBudget int64
	// Admin short-circuits every grant check and gates the user/grant
	// administration statements.
	Admin bool

	salt [16]byte
	hash [sha256.Size]byte

	mu     sync.RWMutex
	grants map[string]Priv
}

// Can reports whether the user holds priv on table. Admins can do
// anything.
func (u *User) Can(table string, priv Priv) bool {
	if u == nil || u.Admin {
		return true
	}
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.grants[canon(table)]&priv == priv
}

// Grants returns the user's table grants, sorted by table name.
func (u *User) Grants() []string {
	u.mu.RLock()
	defer u.mu.RUnlock()
	out := make([]string, 0, len(u.grants))
	for t, p := range u.grants {
		out = append(out, fmt.Sprintf("%s ON %s", p, t))
	}
	sort.Strings(out)
	return out
}

func hashSecret(salt [16]byte, secret string) [sha256.Size]byte {
	h := sha256.New()
	h.Write(salt[:])
	h.Write([]byte(secret))
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// UserOpts are the optional attributes of CREATE USER.
type UserOpts struct {
	Priority      string
	MaxConcurrent int
	MemBudget     int64
	Admin         bool
}

// CreateUser registers a tenant. The secret is salted and hashed
// before it is stored; the plaintext is never kept.
func (c *Catalog) CreateUser(name, secret string, opts UserOpts) error {
	key := canon(name)
	if key == "" {
		return fmt.Errorf("catalog: empty user name")
	}
	pri := opts.Priority
	switch pri {
	case "":
		pri = PriorityInteractive
	case PriorityInteractive, PriorityBatch:
	default:
		return fmt.Errorf("catalog: unknown priority %q (want interactive or batch)", opts.Priority)
	}
	u := &User{
		Name:          key,
		Priority:      pri,
		MaxConcurrent: opts.MaxConcurrent,
		MemBudget:     opts.MemBudget,
		Admin:         opts.Admin,
		grants:        map[string]Priv{},
	}
	if _, err := rand.Read(u.salt[:]); err != nil {
		return fmt.Errorf("catalog: salt: %w", err)
	}
	u.hash = hashSecret(u.salt, secret)
	c.userMu.Lock()
	defer c.userMu.Unlock()
	if c.users == nil {
		c.users = map[string]*User{}
	}
	if _, dup := c.users[key]; dup {
		return fmt.Errorf("catalog: user %q already exists", name)
	}
	c.users[key] = u
	return nil
}

// DropUser removes a tenant. Open sessions authenticated as the user
// keep their session but lose every grant check (the user object stays
// consistent; new authentications fail).
func (c *Catalog) DropUser(name string) error {
	key := canon(name)
	c.userMu.Lock()
	defer c.userMu.Unlock()
	if _, ok := c.users[key]; !ok {
		return fmt.Errorf("catalog: user %q does not exist", name)
	}
	delete(c.users, key)
	return nil
}

// HasUsers reports whether any user exists — the switch that arms
// authentication at the server's front door.
func (c *Catalog) HasUsers() bool {
	c.userMu.RLock()
	defer c.userMu.RUnlock()
	return len(c.users) > 0
}

// GetUser looks a tenant up by name.
func (c *Catalog) GetUser(name string) (*User, error) {
	c.userMu.RLock()
	defer c.userMu.RUnlock()
	u, ok := c.users[canon(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: user %q does not exist", name)
	}
	return u, nil
}

// Users returns all user names, sorted.
func (c *Catalog) Users() []string {
	c.userMu.RLock()
	defer c.userMu.RUnlock()
	out := make([]string, 0, len(c.users))
	for name := range c.users {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Authenticate checks a tenant's secret in constant time and returns
// the user. The error is identical for an unknown tenant and a wrong
// secret, so the handshake leaks no account existence.
func (c *Catalog) Authenticate(name, secret string) (*User, error) {
	c.userMu.RLock()
	u, ok := c.users[canon(name)]
	c.userMu.RUnlock()
	denied := fmt.Errorf("catalog: authentication failed for %q", name)
	if !ok {
		// Burn a hash anyway so unknown names cost the same as wrong
		// secrets.
		var salt [16]byte
		hashSecret(salt, secret)
		return nil, denied
	}
	want := hashSecret(u.salt, secret)
	if subtle.ConstantTimeCompare(want[:], u.hash[:]) != 1 {
		return nil, denied
	}
	return u, nil
}

// Grant adds privileges on table to a user. The table need not exist
// yet (grants may precede CREATE TABLE in provisioning scripts).
func (c *Catalog) Grant(user, table string, priv Priv) error {
	u, err := c.GetUser(user)
	if err != nil {
		return err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.grants[canon(table)] |= priv
	return nil
}

// Revoke removes privileges on table from a user. Sessions already
// authenticated see the revocation on their next statement — grant
// checks run per execution, not per plan.
func (c *Catalog) Revoke(user, table string, priv Priv) error {
	u, err := c.GetUser(user)
	if err != nil {
		return err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	rest := u.grants[canon(table)] &^ priv
	if rest == 0 {
		delete(u.grants, canon(table))
	} else {
		u.grants[canon(table)] = rest
	}
	return nil
}
