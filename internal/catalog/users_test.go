package catalog

import (
	"strings"
	"testing"
)

func TestCreateUserAndAuthenticate(t *testing.T) {
	c := New()
	if c.HasUsers() {
		t.Fatalf("fresh catalog reports HasUsers")
	}
	if err := c.CreateUser("Alice", "s3cret", UserOpts{}); err != nil {
		t.Fatal(err)
	}
	if !c.HasUsers() {
		t.Fatalf("HasUsers false after CreateUser")
	}
	u, err := c.Authenticate("alice", "s3cret")
	if err != nil {
		t.Fatalf("authenticate (case-folded name): %v", err)
	}
	if u.Name != "alice" {
		t.Errorf("user name canon = %q, want alice", u.Name)
	}
	if u.Priority != PriorityInteractive {
		t.Errorf("default priority = %q, want interactive", u.Priority)
	}

	// Wrong secret and unknown user must be indistinguishable.
	_, badSecret := c.Authenticate("alice", "wrong")
	_, unknown := c.Authenticate("nobody", "s3cret")
	if badSecret == nil || unknown == nil {
		t.Fatalf("bad credentials authenticated: secret=%v unknown=%v", badSecret, unknown)
	}
	bs, un := badSecret.Error(), unknown.Error()
	if strings.Replace(bs, "alice", "X", 1) != strings.Replace(un, "nobody", "X", 1) {
		t.Errorf("auth errors leak account existence: %q vs %q", bs, un)
	}
}

func TestCreateUserValidation(t *testing.T) {
	c := New()
	if err := c.CreateUser("", "x", UserOpts{}); err == nil {
		t.Errorf("empty user name accepted")
	}
	if err := c.CreateUser("bob", "x", UserOpts{Priority: "urgent"}); err == nil {
		t.Errorf("unknown priority accepted")
	}
	if err := c.CreateUser("bob", "x", UserOpts{Priority: PriorityBatch}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateUser("BOB", "y", UserOpts{}); err == nil {
		t.Errorf("duplicate user (case-folded) accepted")
	}
}

func TestGrantRevoke(t *testing.T) {
	c := New()
	if err := c.CreateUser("t1", "pw", UserOpts{}); err != nil {
		t.Fatal(err)
	}
	u, _ := c.GetUser("t1")
	if u.Can("orders", PrivSelect) {
		t.Fatalf("fresh user can SELECT ungranted table")
	}
	if err := c.Grant("t1", "Orders", PrivSelect|PrivInsert); err != nil {
		t.Fatal(err)
	}
	if !u.Can("orders", PrivSelect) || !u.Can("ORDERS", PrivInsert) {
		t.Errorf("granted privileges not visible (case-folded)")
	}
	if u.Can("orders", PrivDelete) {
		t.Errorf("ungranted privilege allowed")
	}
	if err := c.Revoke("t1", "orders", PrivInsert); err != nil {
		t.Fatal(err)
	}
	if u.Can("orders", PrivInsert) {
		t.Errorf("revoked privilege still allowed")
	}
	if !u.Can("orders", PrivSelect) {
		t.Errorf("revoke removed more than asked")
	}
	// Admins bypass grants entirely.
	if err := c.CreateUser("root", "pw", UserOpts{Admin: true}); err != nil {
		t.Fatal(err)
	}
	root, _ := c.GetUser("root")
	if !root.Can("anything", PrivAll) {
		t.Errorf("admin cannot access ungranted table")
	}
}

func TestDropUser(t *testing.T) {
	c := New()
	if err := c.DropUser("ghost"); err == nil {
		t.Errorf("dropping unknown user succeeded")
	}
	if err := c.CreateUser("t1", "pw", UserOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := c.DropUser("T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Authenticate("t1", "pw"); err == nil {
		t.Errorf("dropped user still authenticates")
	}
	if c.HasUsers() {
		t.Errorf("HasUsers true after last user dropped")
	}
}

func TestPrivString(t *testing.T) {
	if got := PrivAll.String(); got != "ALL" {
		t.Errorf("PrivAll = %q", got)
	}
	if got := (PrivSelect | PrivUpdate).String(); got != "SELECT,UPDATE" {
		t.Errorf("SELECT|UPDATE = %q", got)
	}
	if got := Priv(0).String(); got != "NONE" {
		t.Errorf("zero priv = %q", got)
	}
}
