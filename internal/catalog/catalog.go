// Package catalog is the data dictionary of the Global Data Handler
// (paper §2.2): relation schemas, fragmentation schemes, fragment
// placements, and the statistics the knowledge-based optimizer feeds on
// ("estimating sizes of intermediate results", §2.4).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/fragment"
	"repro/internal/value"
)

// Table describes one fragmented base relation.
type Table struct {
	Name      string
	Schema    *value.Schema
	Scheme    *fragment.Scheme
	Placement fragment.Placement // PE id per fragment
	// PrimaryKey column positions (empty = none declared).
	PrimaryKey []int

	mu    sync.Mutex
	rows  []int   // live tuple count per fragment
	bytes []int64 // approximate bytes per fragment
}

// NumFragments returns the table's fragment count.
func (t *Table) NumFragments() int { return t.Scheme.N }

// PEOf returns the PE hosting fragment i.
func (t *Table) PEOf(i int) int { return t.Placement[i] }

// UpdateStats records the current size of one fragment.
func (t *Table) UpdateStats(frag, rows int, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if frag < 0 || frag >= len(t.rows) {
		return
	}
	t.rows[frag] = rows
	t.bytes[frag] = bytes
}

// AddStats adjusts one fragment's size by deltas (insert/delete paths).
func (t *Table) AddStats(frag, rowDelta int, byteDelta int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if frag < 0 || frag >= len(t.rows) {
		return
	}
	t.rows[frag] += rowDelta
	t.bytes[frag] += byteDelta
	if t.rows[frag] < 0 {
		t.rows[frag] = 0
	}
	if t.bytes[frag] < 0 {
		t.bytes[frag] = 0
	}
}

// Rows returns the total live tuple count.
func (t *Table) Rows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	sum := 0
	for _, r := range t.rows {
		sum += r
	}
	return sum
}

// FragRows returns the live tuple count of fragment i.
func (t *Table) FragRows(i int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.rows) {
		return 0
	}
	return t.rows[i]
}

// Bytes returns the total approximate size.
func (t *Table) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum int64
	for _, b := range t.bytes {
		sum += b
	}
	return sum
}

// AvgTupleBytes estimates the width of one tuple (64 when unknown).
func (t *Table) AvgTupleBytes() int {
	rows, bytes := t.Rows(), t.Bytes()
	if rows == 0 || bytes == 0 {
		return 64
	}
	return int(bytes / int64(rows))
}

// Catalog is the thread-safe dictionary of tables.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	version atomic.Uint64 // bumped on every DDL; plan caches key validity on it

	userMu sync.RWMutex
	users  map[string]*User // tenant identities and grants (see users.go)
}

// Version returns the schema version counter. Any CREATE or DROP bumps
// it, so a cached plan stamped with an older version must be replanned.
// Atomic rather than lock-guarded: every prepared execution reads it.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{tables: map[string]*Table{}}
}

func canon(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// Create registers a table. The scheme must validate against the schema,
// and the placement must cover every fragment.
func (c *Catalog) Create(name string, schema *value.Schema, scheme *fragment.Scheme, placement fragment.Placement, primaryKey []int) (*Table, error) {
	key := canon(name)
	if key == "" {
		return nil, fmt.Errorf("catalog: empty table name")
	}
	if scheme == nil {
		scheme = &fragment.Scheme{Strategy: fragment.Single, N: 1}
	}
	if err := scheme.Validate(schema); err != nil {
		return nil, err
	}
	if len(placement) != scheme.N {
		return nil, fmt.Errorf("catalog: placement covers %d fragments, scheme has %d", len(placement), scheme.N)
	}
	for _, pk := range primaryKey {
		if pk < 0 || pk >= schema.Len() {
			return nil, fmt.Errorf("catalog: primary key column %d out of range", pk)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[key]; dup {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{
		Name:       key,
		Schema:     schema,
		Scheme:     scheme,
		Placement:  append(fragment.Placement(nil), placement...),
		PrimaryKey: append([]int(nil), primaryKey...),
		rows:       make([]int, scheme.N),
		bytes:      make([]int64, scheme.N),
	}
	c.tables[key] = t
	c.version.Add(1)
	return t, nil
}

// Drop removes a table.
func (c *Catalog) Drop(name string) error {
	key := canon(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, key)
	c.version.Add(1)
	return nil
}

// Get looks a table up by name (case-insensitive).
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[canon(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// Has reports whether a table exists.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[canon(name)]
	return ok
}

// List returns all table names, sorted.
func (c *Catalog) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for name := range c.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe renders a table's definition for the shell.
func (c *Catalog) Describe(name string) (string, error) {
	t, err := c.Get(name)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "table %s %s\n", t.Name, t.Schema)
	fmt.Fprintf(&b, "  fragmentation: %s", t.Scheme.Strategy)
	if t.Scheme.Strategy == fragment.Hash || t.Scheme.Strategy == fragment.Range {
		fmt.Fprintf(&b, " on %s", t.Schema.Column(t.Scheme.Column).Name)
	}
	fmt.Fprintf(&b, ", %d fragments\n", t.Scheme.N)
	fmt.Fprintf(&b, "  placement:")
	for i, pe := range t.Placement {
		fmt.Fprintf(&b, " f%d@pe%d", i, pe)
	}
	fmt.Fprintf(&b, "\n  rows: %d (%d bytes)\n", t.Rows(), t.Bytes())
	return b.String(), nil
}
