package catalog

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/fragment"
	"repro/internal/value"
)

func mkCatalog(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	c := New()
	schema := value.MustSchema("id", "INT", "name", "VARCHAR")
	scheme := &fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 4}
	tab, err := c.Create("Emp", schema, scheme, fragment.Placement{0, 1, 2, 3}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	return c, tab
}

func TestCreateGetDrop(t *testing.T) {
	c, tab := mkCatalog(t)
	if tab.Name != "emp" {
		t.Errorf("name canonicalized to %q", tab.Name)
	}
	got, err := c.Get("EMP")
	if err != nil || got != tab {
		t.Errorf("case-insensitive Get failed: %v, %v", got, err)
	}
	if !c.Has("emp") || c.Has("nope") {
		t.Error("Has wrong")
	}
	if list := c.List(); len(list) != 1 || list[0] != "emp" {
		t.Errorf("List = %v", list)
	}
	if err := c.Drop("emp"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("emp"); err == nil {
		t.Error("double drop should error")
	}
	if _, err := c.Get("emp"); err == nil {
		t.Error("Get after drop should error")
	}
}

func TestCreateValidation(t *testing.T) {
	c := New()
	schema := value.MustSchema("id", "INT")
	if _, err := c.Create("", schema, nil, fragment.Placement{0}, nil); err == nil {
		t.Error("empty name should error")
	}
	// Bad scheme.
	if _, err := c.Create("t", schema, &fragment.Scheme{Strategy: fragment.Hash, Column: 5, N: 2}, fragment.Placement{0, 1}, nil); err == nil {
		t.Error("bad scheme should error")
	}
	// Placement arity mismatch.
	if _, err := c.Create("t", schema, &fragment.Scheme{Strategy: fragment.Hash, Column: 0, N: 2}, fragment.Placement{0}, nil); err == nil {
		t.Error("short placement should error")
	}
	// Bad primary key.
	if _, err := c.Create("t", schema, nil, fragment.Placement{0}, []int{7}); err == nil {
		t.Error("bad primary key should error")
	}
	// Nil scheme defaults to single.
	tab, err := c.Create("t", schema, nil, fragment.Placement{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Scheme.Strategy != fragment.Single || tab.NumFragments() != 1 || tab.PEOf(0) != 5 {
		t.Errorf("default scheme = %+v", tab.Scheme)
	}
	// Duplicate.
	if _, err := c.Create("T", schema, nil, fragment.Placement{0}, nil); err == nil {
		t.Error("case-insensitive duplicate should error")
	}
}

func TestStats(t *testing.T) {
	_, tab := mkCatalog(t)
	tab.UpdateStats(0, 100, 6400)
	tab.UpdateStats(1, 50, 3200)
	tab.AddStats(1, 10, 640)
	if tab.Rows() != 160 {
		t.Errorf("Rows = %d", tab.Rows())
	}
	if tab.FragRows(1) != 60 {
		t.Errorf("FragRows(1) = %d", tab.FragRows(1))
	}
	if tab.Bytes() != 10240 {
		t.Errorf("Bytes = %d", tab.Bytes())
	}
	if tab.AvgTupleBytes() != 64 {
		t.Errorf("AvgTupleBytes = %d", tab.AvgTupleBytes())
	}
	// Underflow clamps.
	tab.AddStats(1, -1000, -999999)
	if tab.FragRows(1) != 0 {
		t.Errorf("clamped rows = %d", tab.FragRows(1))
	}
	// Out-of-range fragment is ignored.
	tab.UpdateStats(99, 1, 1)
	tab.AddStats(-1, 1, 1)
	if tab.FragRows(99) != 0 {
		t.Error("out-of-range stats access")
	}
	// Unknown width defaults to 64.
	fresh := &Table{}
	if fresh.AvgTupleBytes() != 64 {
		t.Errorf("default width = %d", fresh.AvgTupleBytes())
	}
}

func TestDescribe(t *testing.T) {
	c, tab := mkCatalog(t)
	tab.UpdateStats(0, 7, 448)
	s, err := c.Describe("emp")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"emp", "hash", "4 fragments", "f0@pe0", "rows: 7"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Describe missing %q in:\n%s", frag, s)
		}
	}
	if _, err := c.Describe("nope"); err == nil {
		t.Error("Describe of missing table should error")
	}
}

func TestConcurrentCatalog(t *testing.T) {
	c := New()
	schema := value.MustSchema("id", "INT")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			if _, err := c.Create(name, schema, nil, fragment.Placement{0}, nil); err != nil {
				t.Error(err)
			}
			c.List()
			c.Has(name)
			if _, err := c.Get(name); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if len(c.List()) != 8 {
		t.Errorf("List = %v", c.List())
	}
}
