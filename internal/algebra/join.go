package algebra

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/value"
)

func checkJoinKeys(l, r *value.Relation, lcols, rcols []int) error {
	if len(lcols) == 0 || len(lcols) != len(rcols) {
		return fmt.Errorf("algebra: join needs matching non-empty key lists, got %v and %v", lcols, rcols)
	}
	for _, c := range lcols {
		if c < 0 || c >= l.Schema.Len() {
			return fmt.Errorf("algebra: left join key %d out of range for %s", c, l.Schema)
		}
	}
	for _, c := range rcols {
		if c < 0 || c >= r.Schema.Len() {
			return fmt.Errorf("algebra: right join key %d out of range for %s", c, r.Schema)
		}
	}
	return nil
}

// HashJoin equi-joins l and r on the given key columns, building a hash
// table on the smaller input. Output tuples are l ++ r. This is the
// OFM's default join method: with both operands in main memory, the hash
// table never spills.
func HashJoin(l, r *value.Relation, lcols, rcols []int) (*value.Relation, Stats, error) {
	if err := checkJoinKeys(l, r, lcols, rcols); err != nil {
		return nil, Stats{}, err
	}
	out := value.NewRelation(l.Schema.Concat(r.Schema))
	stats := Stats{TuplesRead: l.Len() + r.Len()}

	// Build on the smaller side, probe with the larger.
	buildLeft := l.Len() <= r.Len()
	build, probe := l, r
	bcols, pcols := lcols, rcols
	if !buildLeft {
		build, probe = r, l
		bcols, pcols = rcols, lcols
	}
	table := make(map[string][]value.Tuple, build.Len())
	for _, t := range build.Tuples {
		if hasNullOn(t, bcols) {
			continue // NULL keys never join
		}
		k := t.KeyOn(bcols)
		table[k] = append(table[k], t)
	}
	stats.Hashes += build.Len()
	for _, t := range probe.Tuples {
		if hasNullOn(t, pcols) {
			continue
		}
		stats.Hashes++
		for _, m := range table[t.KeyOn(pcols)] {
			var joined value.Tuple
			if buildLeft {
				joined = m.Concat(t)
			} else {
				joined = t.Concat(m)
			}
			out.Tuples = append(out.Tuples, joined)
		}
	}
	stats.TuplesEmitted = out.Len()
	return out, stats, nil
}

// HashTable is a pre-built hash-join build side, reusable across probe
// calls with the same key columns — the broadcast join hashes its small
// input once and probes it with every fragment of the big one, instead
// of re-hashing the build side per fragment.
type HashTable struct {
	schema  *value.Schema
	cols    []int
	buckets map[string][]value.Tuple
	rows    int
}

// BuildHashTable hashes build's key columns once. Stats carries the
// hash count so the caller can charge the owning PE a single time.
func BuildHashTable(build *value.Relation, cols []int) (*HashTable, Stats, error) {
	for _, c := range cols {
		if c < 0 || c >= build.Schema.Len() {
			return nil, Stats{}, fmt.Errorf("algebra: build key %d out of range for %s", c, build.Schema)
		}
	}
	ht := &HashTable{
		schema:  build.Schema,
		cols:    append([]int(nil), cols...),
		buckets: make(map[string][]value.Tuple, build.Len()),
		rows:    build.Len(),
	}
	for _, t := range build.Tuples {
		if hasNullOn(t, ht.cols) {
			continue // NULL keys never join
		}
		k := t.KeyOn(ht.cols)
		ht.buckets[k] = append(ht.buckets[k], t)
	}
	return ht, Stats{TuplesRead: build.Len(), Hashes: build.Len()}, nil
}

// Rows returns the build-side cardinality.
func (ht *HashTable) Rows() int { return ht.rows }

// ProbeJoin joins probe against the pre-built table. probeLeft selects
// the output column order: probe ++ build when true, build ++ probe
// when false. Stats counts only the probe-side work; the build was
// charged once by BuildHashTable.
func (ht *HashTable) ProbeJoin(probe *value.Relation, pcols []int, probeLeft bool) (*value.Relation, Stats, error) {
	if len(pcols) != len(ht.cols) {
		return nil, Stats{}, fmt.Errorf("algebra: probe keys %v against build keys %v", pcols, ht.cols)
	}
	for _, c := range pcols {
		if c < 0 || c >= probe.Schema.Len() {
			return nil, Stats{}, fmt.Errorf("algebra: probe key %d out of range for %s", c, probe.Schema)
		}
	}
	var out *value.Relation
	if probeLeft {
		out = value.NewRelation(probe.Schema.Concat(ht.schema))
	} else {
		out = value.NewRelation(ht.schema.Concat(probe.Schema))
	}
	stats := Stats{TuplesRead: probe.Len()}
	for _, t := range probe.Tuples {
		if hasNullOn(t, pcols) {
			continue
		}
		stats.Hashes++
		for _, m := range ht.buckets[t.KeyOn(pcols)] {
			if probeLeft {
				out.Tuples = append(out.Tuples, t.Concat(m))
			} else {
				out.Tuples = append(out.Tuples, m.Concat(t))
			}
		}
	}
	stats.TuplesEmitted = out.Len()
	return out, stats, nil
}

func hasNullOn(t value.Tuple, cols []int) bool {
	for _, c := range cols {
		if t[c].IsNull() {
			return true
		}
	}
	return false
}

// NestedLoopJoin joins l and r on an arbitrary predicate over the
// concatenated schema (theta joins); pred nil makes it a cross product.
func NestedLoopJoin(l, r *value.Relation, pred *expr.Predicate) (*value.Relation, Stats, error) {
	out := value.NewRelation(l.Schema.Concat(r.Schema))
	stats := Stats{TuplesRead: l.Len() + r.Len()}
	for _, lt := range l.Tuples {
		for _, rt := range r.Tuples {
			joined := lt.Concat(rt)
			stats.Compares++
			if pred != nil {
				ok, err := pred.Match(joined)
				if err != nil {
					return nil, Stats{}, fmt.Errorf("algebra: nested-loop join: %w", err)
				}
				if !ok {
					continue
				}
			}
			out.Tuples = append(out.Tuples, joined)
		}
	}
	stats.TuplesEmitted = out.Len()
	return out, stats, nil
}

// MergeJoin equi-joins two inputs by sorting both on their keys and
// merging. Equal-key groups produce their cross product.
func MergeJoin(l, r *value.Relation, lcols, rcols []int) (*value.Relation, Stats, error) {
	if err := checkJoinKeys(l, r, lcols, rcols); err != nil {
		return nil, Stats{}, err
	}
	ls, lstats, err := Sort(l, lcols, nil)
	if err != nil {
		return nil, Stats{}, err
	}
	rs, rstats, err := Sort(r, rcols, nil)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{TuplesRead: l.Len() + r.Len()}
	stats.Compares += lstats.Compares + rstats.Compares

	out := value.NewRelation(l.Schema.Concat(r.Schema))
	i, j := 0, 0
	for i < len(ls.Tuples) && j < len(rs.Tuples) {
		lt, rt := ls.Tuples[i], rs.Tuples[j]
		if hasNullOn(lt, lcols) {
			i++
			continue
		}
		if hasNullOn(rt, rcols) {
			j++
			continue
		}
		c := compareKeys(lt, rt, lcols, rcols)
		stats.Compares++
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find the extent of the equal-key group on both sides.
			i2 := i + 1
			for i2 < len(ls.Tuples) && compareKeys(ls.Tuples[i2], rt, lcols, rcols) == 0 {
				i2++
			}
			j2 := j + 1
			for j2 < len(rs.Tuples) && compareKeys(lt, rs.Tuples[j2], lcols, rcols) == 0 {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					out.Tuples = append(out.Tuples, ls.Tuples[a].Concat(rs.Tuples[b]))
				}
			}
			i, j = i2, j2
		}
	}
	stats.TuplesEmitted = out.Len()
	return out, stats, nil
}

func compareKeys(lt, rt value.Tuple, lcols, rcols []int) int {
	for k := range lcols {
		if c := value.Compare(lt[lcols[k]], rt[rcols[k]]); c != 0 {
			return c
		}
	}
	return 0
}

// SemiJoin returns the l tuples that have at least one match in r on the
// key columns — the distributed join reducer PRISMA-style optimizers use
// to cut communication volume.
func SemiJoin(l, r *value.Relation, lcols, rcols []int) (*value.Relation, Stats, error) {
	if err := checkJoinKeys(l, r, lcols, rcols); err != nil {
		return nil, Stats{}, err
	}
	keys := make(map[string]struct{}, r.Len())
	for _, t := range r.Tuples {
		if !hasNullOn(t, rcols) {
			keys[t.KeyOn(rcols)] = struct{}{}
		}
	}
	out := value.NewRelation(l.Schema)
	stats := Stats{TuplesRead: l.Len() + r.Len(), Hashes: l.Len() + r.Len()}
	for _, t := range l.Tuples {
		if hasNullOn(t, lcols) {
			continue
		}
		if _, ok := keys[t.KeyOn(lcols)]; ok {
			out.Tuples = append(out.Tuples, t)
		}
	}
	stats.TuplesEmitted = out.Len()
	return out, stats, nil
}

// AntiJoin returns the l tuples with no match in r (used for NOT EXISTS
// and set difference on keys).
func AntiJoin(l, r *value.Relation, lcols, rcols []int) (*value.Relation, Stats, error) {
	if err := checkJoinKeys(l, r, lcols, rcols); err != nil {
		return nil, Stats{}, err
	}
	keys := make(map[string]struct{}, r.Len())
	for _, t := range r.Tuples {
		if !hasNullOn(t, rcols) {
			keys[t.KeyOn(rcols)] = struct{}{}
		}
	}
	out := value.NewRelation(l.Schema)
	stats := Stats{TuplesRead: l.Len() + r.Len(), Hashes: l.Len() + r.Len()}
	for _, t := range l.Tuples {
		if hasNullOn(t, lcols) {
			out.Tuples = append(out.Tuples, t)
			continue
		}
		if _, ok := keys[t.KeyOn(lcols)]; !ok {
			out.Tuples = append(out.Tuples, t)
		}
	}
	stats.TuplesEmitted = out.Len()
	return out, stats, nil
}
