package algebra

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// AggFunc is an aggregate function.
type AggFunc uint8

// Supported aggregates.
const (
	Count AggFunc = iota
	Sum
	Avg
	Min
	Max
)

// ParseAggFunc maps a SQL function name onto an AggFunc.
func ParseAggFunc(name string) (AggFunc, bool) {
	switch strings.ToUpper(name) {
	case "COUNT":
		return Count, true
	case "SUM":
		return Sum, true
	case "AVG":
		return Avg, true
	case "MIN":
		return Min, true
	case "MAX":
		return Max, true
	default:
		return Count, false
	}
}

func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	}
	return "?"
}

// AggSpec is one aggregate column: Func over input column Col (Col < 0
// means COUNT(*)), named As in the output.
type AggSpec struct {
	Func AggFunc
	Col  int
	As   string
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	min     value.Value
	max     value.Value
	started bool
}

func (st *aggState) observe(v value.Value) {
	if v.IsNull() {
		return // SQL aggregates skip NULLs
	}
	st.count++
	switch v.Kind() {
	case value.KindInt:
		st.sumI += v.Int()
		st.sumF += float64(v.Int())
	case value.KindFloat:
		st.isFloat = true
		st.sumF += v.Float()
	}
	if !st.started {
		st.min, st.max = v, v
		st.started = true
		return
	}
	if value.Compare(v, st.min) < 0 {
		st.min = v
	}
	if value.Compare(v, st.max) > 0 {
		st.max = v
	}
}

func (st *aggState) result(f AggFunc) value.Value {
	switch f {
	case Count:
		return value.NewInt(st.count)
	case Sum:
		if st.count == 0 {
			return value.Null
		}
		if st.isFloat {
			return value.NewFloat(st.sumF)
		}
		return value.NewInt(st.sumI)
	case Avg:
		if st.count == 0 {
			return value.Null
		}
		return value.NewFloat(st.sumF / float64(st.count))
	case Min:
		if !st.started {
			return value.Null
		}
		return st.min
	case Max:
		if !st.started {
			return value.Null
		}
		return st.max
	}
	return value.Null
}

// resultKind returns the output kind of an aggregate over input kind k.
func resultKind(f AggFunc, k value.Kind) value.Kind {
	switch f {
	case Count:
		return value.KindInt
	case Avg:
		return value.KindFloat
	case Sum:
		if k == value.KindFloat {
			return value.KindFloat
		}
		return value.KindInt
	default:
		return k
	}
}

// Aggregate groups r by the groupBy columns (empty = one global group)
// and computes the aggregate specs. Output columns are the group-by
// columns followed by one column per spec.
func Aggregate(r *value.Relation, groupBy []int, specs []AggSpec) (*value.Relation, Stats, error) {
	for _, c := range groupBy {
		if c < 0 || c >= r.Schema.Len() {
			return nil, Stats{}, fmt.Errorf("algebra: group-by column %d out of range for %s", c, r.Schema)
		}
	}
	for _, sp := range specs {
		if sp.Col >= r.Schema.Len() {
			return nil, Stats{}, fmt.Errorf("algebra: aggregate column %d out of range for %s", sp.Col, r.Schema)
		}
		if sp.Col < 0 && sp.Func != Count {
			return nil, Stats{}, fmt.Errorf("algebra: %s(*) is not defined", sp.Func)
		}
	}

	// Output schema.
	cols := make([]value.Column, 0, len(groupBy)+len(specs))
	for _, c := range groupBy {
		cols = append(cols, r.Schema.Column(c))
	}
	for _, sp := range specs {
		name := sp.As
		if name == "" {
			if sp.Col < 0 {
				name = "COUNT(*)"
			} else {
				name = fmt.Sprintf("%s(%s)", sp.Func, r.Schema.Column(sp.Col).Name)
			}
		}
		k := value.KindInt
		if sp.Col >= 0 {
			k = resultKind(sp.Func, r.Schema.Column(sp.Col).Kind)
		}
		cols = append(cols, value.Column{Name: name, Kind: k})
	}
	out := value.NewRelation(value.NewSchema(cols...))

	type group struct {
		key    value.Tuple
		states []aggState
	}
	groups := map[string]*group{}
	var order []string
	var keyBuf []byte // reused per tuple; the map lookup on string(keyBuf) does not allocate
	for _, t := range r.Tuples {
		keyBuf = t.AppendKeyOn(keyBuf[:0], groupBy)
		g := groups[string(keyBuf)]
		if g == nil {
			k := string(keyBuf) // materialize the key once per group, not per tuple
			g = &group{key: t.Project(groupBy), states: make([]aggState, len(specs))}
			groups[k] = g
			order = append(order, k)
		}
		for i, sp := range specs {
			if sp.Col < 0 {
				g.states[i].count++ // COUNT(*) counts rows, NULLs included
			} else {
				g.states[i].observe(t[sp.Col])
			}
		}
	}
	// A global aggregate over an empty input still emits one row.
	if len(groupBy) == 0 && len(order) == 0 {
		groups[""] = &group{key: value.Tuple{}, states: make([]aggState, len(specs))}
		order = append(order, "")
	}
	for _, k := range order {
		g := groups[k]
		row := make(value.Tuple, 0, len(groupBy)+len(specs))
		row = append(row, g.key...)
		for i, sp := range specs {
			row = append(row, g.states[i].result(sp.Func))
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, Stats{TuplesRead: r.Len(), TuplesEmitted: out.Len(), Hashes: r.Len()}, nil
}

// MergeAggregates combines per-fragment partial aggregates into a final
// result — the two-phase distributed aggregation the engine runs: each
// OFM aggregates its fragment, the coordinator merges. The partials must
// have been produced by PartialSpecs(specs); specs describes the final
// result.
func MergeAggregates(partials []*value.Relation, groupByLen int, specs []AggSpec) (*value.Relation, Stats, error) {
	if len(partials) == 0 {
		return nil, Stats{}, fmt.Errorf("algebra: no partial aggregates to merge")
	}
	stats := Stats{}
	// Partial layout: groupBy..., then per spec either (count) for COUNT,
	// (sum) for SUM, (sum, count) for AVG, (min)/(max) otherwise.
	type group struct {
		key    value.Tuple
		states []aggState
	}
	groups := map[string]*group{}
	var order []string
	gb := make([]int, groupByLen)
	for i := range gb {
		gb[i] = i
	}
	var keyBuf []byte
	for _, p := range partials {
		stats.TuplesRead += p.Len()
		for _, t := range p.Tuples {
			keyBuf = t.AppendKeyOn(keyBuf[:0], gb)
			g := groups[string(keyBuf)]
			if g == nil {
				k := string(keyBuf)
				g = &group{key: t.Project(gb), states: make([]aggState, len(specs))}
				groups[k] = g
				order = append(order, k)
			}
			col := groupByLen
			for i, sp := range specs {
				st := &g.states[i]
				switch sp.Func {
				case Count:
					st.count += t[col].Int()
					col++
				case Sum:
					v := t[col]
					if !v.IsNull() {
						st.count++
						if v.Kind() == value.KindFloat {
							st.isFloat = true
							st.sumF += v.Float()
						} else {
							st.sumI += v.Int()
							st.sumF += v.Float()
						}
					}
					col++
				case Avg:
					sum, cnt := t[col], t[col+1]
					if !sum.IsNull() && cnt.Int() > 0 {
						st.count += cnt.Int()
						st.sumF += sum.Float()
					}
					col += 2
				case Min:
					v := t[col]
					if !v.IsNull() {
						if !st.started || value.Compare(v, st.min) < 0 {
							st.min = v
						}
						st.started = true
						st.count++
					}
					col++
				case Max:
					v := t[col]
					if !v.IsNull() {
						if !st.started || value.Compare(v, st.max) > 0 {
							st.max = v
						}
						st.started = true
						st.count++
					}
					col++
				}
			}
		}
	}
	if groupByLen == 0 && len(order) == 0 {
		groups[""] = &group{key: value.Tuple{}, states: make([]aggState, len(specs))}
		order = append(order, "")
	}

	// Final schema mirrors Aggregate's: derive from the first partial's
	// group-by columns plus the spec names.
	first := partials[0]
	cols := make([]value.Column, 0, groupByLen+len(specs))
	for i := 0; i < groupByLen; i++ {
		cols = append(cols, first.Schema.Column(i))
	}
	for _, sp := range specs {
		name := sp.As
		if name == "" {
			name = sp.Func.String()
		}
		k := value.KindFloat
		switch sp.Func {
		case Count:
			k = value.KindInt
		case Sum, Min, Max:
			// Take the partial's column kind.
			k = value.KindFloat
		}
		cols = append(cols, value.Column{Name: name, Kind: k})
	}
	out := value.NewRelation(value.NewSchema(cols...))
	for _, k := range order {
		g := groups[k]
		row := make(value.Tuple, 0, groupByLen+len(specs))
		row = append(row, g.key...)
		for i, sp := range specs {
			row = append(row, g.states[i].result(sp.Func))
		}
		out.Tuples = append(out.Tuples, row)
	}
	stats.TuplesEmitted = out.Len()
	return out, stats, nil
}

// PartialSpecs rewrites final aggregate specs into the per-fragment
// partial specs (AVG becomes SUM+COUNT; COUNT(*) stays COUNT).
func PartialSpecs(specs []AggSpec) []AggSpec {
	out := make([]AggSpec, 0, len(specs))
	for _, sp := range specs {
		switch sp.Func {
		case Avg:
			out = append(out, AggSpec{Func: Sum, Col: sp.Col, As: sp.As + "_sum"})
			out = append(out, AggSpec{Func: Count, Col: sp.Col, As: sp.As + "_cnt"})
		default:
			out = append(out, sp)
		}
	}
	return out
}
