package algebra

import (
	"testing"

	"repro/internal/value"
)

func intRel(t *testing.T, vals ...int64) *value.Relation {
	t.Helper()
	s := value.MustSchema("x", "INT")
	r := value.NewRelation(s)
	for _, v := range vals {
		r.Append(value.Ints(v))
	}
	return r
}

func relVals(r *value.Relation) []int64 {
	out := make([]int64, r.Len())
	for i, t := range r.Tuples {
		out[i] = t[0].Int()
	}
	return out
}

func TestUnion(t *testing.T) {
	a := intRel(t, 1, 2, 2, 3)
	b := intRel(t, 3, 4)
	u, st, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 4 {
		t.Errorf("union = %v", relVals(u))
	}
	if st.TuplesRead != 6 {
		t.Errorf("stats = %+v", st)
	}
	ua, _, err := UnionAll(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ua.Len() != 6 {
		t.Errorf("union all = %v", relVals(ua))
	}
}

func TestDiffIntersect(t *testing.T) {
	a := intRel(t, 1, 2, 3, 3, 4)
	b := intRel(t, 2, 4, 5)
	d, _, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := relVals(d); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("diff = %v", got)
	}
	i, _, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := relVals(i); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("intersect = %v", got)
	}
}

func TestSetOpsCompatibility(t *testing.T) {
	a := intRel(t, 1)
	b := value.NewRelation(value.MustSchema("x", "VARCHAR"))
	b.Append(value.NewTuple(value.NewString("s")))
	if _, _, err := Union(a, b); err == nil {
		t.Error("incompatible union should error")
	}
	if _, _, err := UnionAll(a, b); err == nil {
		t.Error("incompatible union all should error")
	}
	if _, _, err := Diff(a, b); err == nil {
		t.Error("incompatible diff should error")
	}
	if _, _, err := Intersect(a, b); err == nil {
		t.Error("incompatible intersect should error")
	}
	// Same kinds, different names: compatible (positional).
	c := value.NewRelation(value.MustSchema("y", "INT"))
	c.Append(value.Ints(9))
	if _, _, err := Union(a, c); err != nil {
		t.Errorf("positionally compatible union failed: %v", err)
	}
}

func TestSetAlgebraLaws(t *testing.T) {
	// (A ∪ B) \ B == A \ B for sets.
	a := intRel(t, 1, 2, 3)
	b := intRel(t, 2, 4)
	ab, _, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	left, _, err := Diff(ab, b)
	if err != nil {
		t.Fatal(err)
	}
	right, _, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !left.SameSet(right) {
		t.Errorf("(A∪B)\\B = %v, A\\B = %v", relVals(left), relVals(right))
	}
	// A ∩ B == A \ (A \ B).
	i1, _, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	amb, _, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	i2, _, err := Diff(a, amb)
	if err != nil {
		t.Fatal(err)
	}
	if !i1.SameSet(i2) {
		t.Errorf("A∩B = %v, A\\(A\\B) = %v", relVals(i1), relVals(i2))
	}
}

func TestEmptySetOps(t *testing.T) {
	a := intRel(t)
	b := intRel(t, 1)
	if u, _, err := Union(a, b); err != nil || u.Len() != 1 {
		t.Errorf("∅∪{1}: %v, %v", u, err)
	}
	if d, _, err := Diff(a, b); err != nil || d.Len() != 0 {
		t.Errorf("∅\\{1}: %v, %v", d, err)
	}
	if i, _, err := Intersect(b, a); err != nil || i.Len() != 0 {
		t.Errorf("{1}∩∅: %v, %v", i, err)
	}
}
