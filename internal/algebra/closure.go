package algebra

import (
	"fmt"

	"repro/internal/value"
)

// The transitive closure operator. Paper §2.5: OFMs "support a transitive
// closure operator for dealing with recursive queries" — the closure is
// evaluated inside the engine as an algebra operator rather than by
// tuple-at-a-time resolution. Three strategies are implemented; E5
// compares them:
//
//   - TCNaive: T_{i+1} = E ∪ π(T_i ⋈ E), recomputing the full join every
//     round until fixpoint. The textbook baseline.
//   - TCSemiNaive: delta iteration, joining only the new pairs of the
//     previous round — the set-oriented evaluation PRISMAlog's designers
//     intend (§2.3).
//   - TCSmart: logarithmic squaring, T ← T ∪ T∘T, reaching paths of
//     length 2^k after k rounds; fewer, bigger joins.

// TCAlgorithm selects the closure evaluation strategy.
type TCAlgorithm uint8

// Closure strategies.
const (
	TCNaive TCAlgorithm = iota
	TCSemiNaive
	TCSmart
)

func (a TCAlgorithm) String() string {
	switch a {
	case TCNaive:
		return "naive"
	case TCSemiNaive:
		return "semi-naive"
	case TCSmart:
		return "smart"
	}
	return "?"
}

// pairSet is a set of (from,to) pairs with stable insertion order.
type pairSet struct {
	seen  map[[2]string]struct{}
	pairs [][2]value.Value
}

func newPairSet(capacity int) *pairSet {
	return &pairSet{seen: make(map[[2]string]struct{}, capacity)}
}

func pairKey(a, b value.Value) [2]string {
	return [2]string{string(value.AppendValue(nil, a)), string(value.AppendValue(nil, b))}
}

// add inserts the pair; reports whether it was new.
func (ps *pairSet) add(a, b value.Value) bool {
	k := pairKey(a, b)
	if _, dup := ps.seen[k]; dup {
		return false
	}
	ps.seen[k] = struct{}{}
	ps.pairs = append(ps.pairs, [2]value.Value{a, b})
	return true
}

func (ps *pairSet) has(a, b value.Value) bool {
	_, ok := ps.seen[pairKey(a, b)]
	return ok
}

func (ps *pairSet) len() int { return len(ps.pairs) }

// edgeIndex maps a node (encoded) to its successors.
type edgeIndex map[string][]value.Value

func checkClosureCols(r *value.Relation, fromCol, toCol int) error {
	if fromCol < 0 || fromCol >= r.Schema.Len() || toCol < 0 || toCol >= r.Schema.Len() {
		return fmt.Errorf("algebra: closure columns (%d,%d) out of range for %s", fromCol, toCol, r.Schema)
	}
	if fromCol == toCol {
		return fmt.Errorf("algebra: closure needs two distinct columns")
	}
	return nil
}

func buildEdges(r *value.Relation, fromCol, toCol int) (edgeIndex, *pairSet) {
	idx := edgeIndex{}
	base := newPairSet(r.Len())
	for _, t := range r.Tuples {
		a, b := t[fromCol], t[toCol]
		if a.IsNull() || b.IsNull() {
			continue
		}
		if base.add(a, b) {
			k := string(value.AppendValue(nil, a))
			idx[k] = append(idx[k], b)
		}
	}
	return idx, base
}

func closureSchema(r *value.Relation, fromCol, toCol int) *value.Schema {
	return value.NewSchema(r.Schema.Column(fromCol), r.Schema.Column(toCol))
}

func pairsToRelation(s *value.Schema, ps *pairSet) *value.Relation {
	out := value.NewRelation(s)
	out.Tuples = make([]value.Tuple, len(ps.pairs))
	for i, p := range ps.pairs {
		out.Tuples[i] = value.NewTuple(p[0], p[1])
	}
	return out
}

// TransitiveClosure computes all pairs (a, b) with a path from a to b
// over the edge set in columns (fromCol, toCol) of r. Stats.TuplesRead
// counts per-round join probes — the work metric the E5 table reports.
func TransitiveClosure(r *value.Relation, fromCol, toCol int, algo TCAlgorithm) (*value.Relation, Stats, int, error) {
	if err := checkClosureCols(r, fromCol, toCol); err != nil {
		return nil, Stats{}, 0, err
	}
	switch algo {
	case TCNaive:
		return tcNaive(r, fromCol, toCol)
	case TCSemiNaive:
		return tcSemiNaive(r, fromCol, toCol)
	case TCSmart:
		return tcSmart(r, fromCol, toCol)
	default:
		return nil, Stats{}, 0, fmt.Errorf("algebra: unknown closure algorithm %d", algo)
	}
}

func tcNaive(r *value.Relation, fromCol, toCol int) (*value.Relation, Stats, int, error) {
	edges, base := buildEdges(r, fromCol, toCol)
	stats := Stats{TuplesRead: r.Len()}
	total := newPairSet(base.len() * 2)
	for _, p := range base.pairs {
		total.add(p[0], p[1])
	}
	rounds := 0
	for {
		rounds++
		grew := false
		// Recompute T ⋈ E over the FULL T each round — the wasted work
		// is the point of the baseline.
		snapshot := append([][2]value.Value(nil), total.pairs...)
		for _, p := range snapshot {
			bk := string(value.AppendValue(nil, p[1]))
			for _, c := range edges[bk] {
				stats.Hashes++
				stats.TuplesRead++
				if total.add(p[0], c) {
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}
	stats.TuplesEmitted = total.len()
	return pairsToRelation(closureSchema(r, fromCol, toCol), total), stats, rounds, nil
}

func tcSemiNaive(r *value.Relation, fromCol, toCol int) (*value.Relation, Stats, int, error) {
	edges, base := buildEdges(r, fromCol, toCol)
	stats := Stats{TuplesRead: r.Len()}
	total := newPairSet(base.len() * 2)
	delta := make([][2]value.Value, 0, base.len())
	for _, p := range base.pairs {
		total.add(p[0], p[1])
		delta = append(delta, p)
	}
	rounds := 0
	for len(delta) > 0 {
		rounds++
		var next [][2]value.Value
		// Join only the delta against the edges.
		for _, p := range delta {
			bk := string(value.AppendValue(nil, p[1]))
			for _, c := range edges[bk] {
				stats.Hashes++
				stats.TuplesRead++
				if total.add(p[0], c) {
					next = append(next, [2]value.Value{p[0], c})
				}
			}
		}
		delta = next
	}
	stats.TuplesEmitted = total.len()
	return pairsToRelation(closureSchema(r, fromCol, toCol), total), stats, rounds, nil
}

func tcSmart(r *value.Relation, fromCol, toCol int) (*value.Relation, Stats, int, error) {
	_, base := buildEdges(r, fromCol, toCol)
	stats := Stats{TuplesRead: r.Len()}
	total := newPairSet(base.len() * 2)
	for _, p := range base.pairs {
		total.add(p[0], p[1])
	}
	rounds := 0
	for {
		rounds++
		// T ← T ∪ (T ∘ T): index the current T by source, compose.
		idx := edgeIndex{}
		for _, p := range total.pairs {
			k := string(value.AppendValue(nil, p[0]))
			idx[k] = append(idx[k], p[1])
		}
		grew := false
		snapshot := append([][2]value.Value(nil), total.pairs...)
		for _, p := range snapshot {
			bk := string(value.AppendValue(nil, p[1]))
			for _, c := range idx[bk] {
				stats.Hashes++
				stats.TuplesRead++
				if total.add(p[0], c) {
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}
	stats.TuplesEmitted = total.len()
	return pairsToRelation(closureSchema(r, fromCol, toCol), total), stats, rounds, nil
}

// Reachable computes the set of nodes reachable from the given source
// values over the edge columns of r — the bound-argument form a query
// like ancestor('ann', X) compiles to. Output is (source, reached) pairs.
func Reachable(r *value.Relation, fromCol, toCol int, sources []value.Value) (*value.Relation, Stats, error) {
	if err := checkClosureCols(r, fromCol, toCol); err != nil {
		return nil, Stats{}, err
	}
	edges, _ := buildEdges(r, fromCol, toCol)
	stats := Stats{TuplesRead: r.Len()}
	total := newPairSet(len(sources) * 4)
	for _, src := range sources {
		if src.IsNull() {
			continue
		}
		frontier := []value.Value{src}
		for len(frontier) > 0 {
			var next []value.Value
			for _, node := range frontier {
				nk := string(value.AppendValue(nil, node))
				for _, c := range edges[nk] {
					stats.Hashes++
					if total.add(src, c) {
						next = append(next, c)
					}
				}
			}
			frontier = next
		}
	}
	stats.TuplesEmitted = total.len()
	return pairsToRelation(closureSchema(r, fromCol, toCol), total), stats, nil
}
