package algebra

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

func TestSplitByHash(t *testing.T) {
	tuples := make([]value.Tuple, 100)
	for i := range tuples {
		tuples[i] = value.Ints(int64(i%13), int64(i))
	}
	buckets, st := SplitByHash(tuples, []int{0}, 4)
	if st.Hashes != 100 || st.TuplesRead != 100 {
		t.Errorf("stats = %+v", st)
	}
	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	if total != 100 {
		t.Fatalf("split dropped tuples: %d", total)
	}
	// Equal keys land in equal buckets, and the assignment agrees with
	// an independent split on a different column list carrying the same
	// values (the join-alignment guarantee).
	other := make([]value.Tuple, len(tuples))
	for i, tp := range tuples {
		other[i] = value.Ints(int64(i), tp[0].Int()) // key now at column 1
	}
	buckets2, _ := SplitByHash(other, []int{1}, 4)
	keyBucket := map[int64]int{}
	for bi, b := range buckets {
		for _, tp := range b {
			keyBucket[tp[0].Int()] = bi
		}
	}
	for bi, b := range buckets2 {
		for _, tp := range b {
			if keyBucket[tp[1].Int()] != bi {
				t.Fatalf("key %d in bucket %d on one side, %d on the other", tp[1].Int(), keyBucket[tp[1].Int()], bi)
			}
		}
	}
	// Splitting redistributes by reference: the returned tuples are the
	// same backing tuples, never copies.
	found := false
	for _, b := range buckets {
		for _, tp := range b {
			if &tp[0] == &tuples[0][0] {
				found = true
			}
		}
	}
	if !found {
		t.Error("split copied tuples instead of redistributing references")
	}
}

func TestMergeSortedRuns(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	schema := value.MustSchema("k", "INT", "v", "INT")
	var runs []*value.Relation
	var all []value.Tuple
	for i := 0; i < 5; i++ {
		rel := value.NewRelation(schema)
		n := r.Intn(40) // includes a likely empty-ish run
		for j := 0; j < n; j++ {
			rel.Append(value.Ints(r.Int63n(50), int64(i)))
		}
		sorted, _, err := Sort(rel, []int{0}, []bool{true})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, sorted)
		all = append(all, sorted.Tuples...)
	}
	merged, st, err := MergeSortedRuns(runs, []int{0}, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != len(all) {
		t.Fatalf("merged %d of %d tuples", merged.Len(), len(all))
	}
	for i := 1; i < merged.Len(); i++ {
		if value.Compare(merged.Tuples[i-1][0], merged.Tuples[i][0]) < 0 {
			t.Fatalf("descending merge out of order at %d: %v then %v", i, merged.Tuples[i-1], merged.Tuples[i])
		}
	}
	if st.TuplesRead != len(all) || st.TuplesEmitted != len(all) {
		t.Errorf("stats = %+v", st)
	}
	// Reference semantics: merged output must equal a full central sort.
	whole := value.NewRelation(schema)
	whole.Tuples = append(whole.Tuples, all...)
	central, _, err := Sort(whole, []int{0}, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range central.Tuples {
		if value.Compare(central.Tuples[i][0], merged.Tuples[i][0]) != 0 {
			t.Fatalf("merge disagrees with central sort at %d", i)
		}
	}
}

func TestMergeSortedRunsEdges(t *testing.T) {
	if _, _, err := MergeSortedRuns(nil, []int{0}, nil); err == nil {
		t.Error("merging zero runs succeeded")
	}
	schema := value.MustSchema("k", "INT")
	empty := value.NewRelation(schema)
	out, _, err := MergeSortedRuns([]*value.Relation{empty, empty}, []int{0}, nil)
	if err != nil || out.Len() != 0 {
		t.Errorf("empty merge = %v, %v", out, err)
	}
	bad := value.NewRelation(schema)
	if _, _, err := MergeSortedRuns([]*value.Relation{bad}, []int{3}, nil); err == nil {
		t.Error("out-of-range merge column accepted")
	}
}
