package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/value"
)

func edgeRel(t *testing.T, edges [][2]int64) *value.Relation {
	t.Helper()
	s := value.MustSchema("src", "INT", "dst", "INT")
	r := value.NewRelation(s)
	for _, e := range edges {
		r.Append(value.Ints(e[0], e[1]))
	}
	return r
}

func chain(n int) [][2]int64 {
	var edges [][2]int64
	for i := int64(0); i < int64(n); i++ {
		edges = append(edges, [2]int64{i, i + 1})
	}
	return edges
}

var allTCAlgos = []TCAlgorithm{TCNaive, TCSemiNaive, TCSmart}

func TestClosureChain(t *testing.T) {
	// Chain 0→1→2→3→4: closure has n*(n+1)/2 = 15 pairs for n=5 edges.
	r := edgeRel(t, chain(5))
	for _, algo := range allTCAlgos {
		out, st, rounds, err := TransitiveClosure(r, 0, 1, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if out.Len() != 15 {
			t.Errorf("%v: closure = %d pairs, want 15", algo, out.Len())
		}
		if st.TuplesEmitted != 15 {
			t.Errorf("%v: stats = %+v", algo, st)
		}
		if rounds < 1 {
			t.Errorf("%v: rounds = %d", algo, rounds)
		}
	}
}

func TestClosureRoundCounts(t *testing.T) {
	// On a long chain: semi-naive needs ~n rounds, smart needs ~log n.
	r := edgeRel(t, chain(64))
	_, _, semiRounds, err := TransitiveClosure(r, 0, 1, TCSemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	_, _, smartRounds, err := TransitiveClosure(r, 0, 1, TCSmart)
	if err != nil {
		t.Fatal(err)
	}
	if smartRounds >= semiRounds/2 {
		t.Errorf("smart took %d rounds, semi-naive %d; smart should be logarithmic", smartRounds, semiRounds)
	}
	if smartRounds > 9 {
		t.Errorf("smart rounds = %d on a 64-chain, want ≤ ~log2(64)+2", smartRounds)
	}
}

func TestSemiNaiveBeatsNaiveOnWork(t *testing.T) {
	// The E5 claim: semi-naive does strictly less join work than naive.
	r := edgeRel(t, chain(32))
	_, naiveStats, _, err := TransitiveClosure(r, 0, 1, TCNaive)
	if err != nil {
		t.Fatal(err)
	}
	_, semiStats, _, err := TransitiveClosure(r, 0, 1, TCSemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if semiStats.Hashes >= naiveStats.Hashes {
		t.Errorf("semi-naive %d probes >= naive %d", semiStats.Hashes, naiveStats.Hashes)
	}
}

func TestClosureCycle(t *testing.T) {
	// 0→1→2→0: every node reaches every node (including itself).
	r := edgeRel(t, [][2]int64{{0, 1}, {1, 2}, {2, 0}})
	for _, algo := range allTCAlgos {
		out, _, _, err := TransitiveClosure(r, 0, 1, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if out.Len() != 9 {
			t.Errorf("%v: cycle closure = %d pairs, want 9", algo, out.Len())
		}
	}
}

func TestClosureAlgorithmsAgreeOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(15)
		var edges [][2]int64
		for i := 0; i < n*2; i++ {
			edges = append(edges, [2]int64{rng.Int63n(int64(n)), rng.Int63n(int64(n))})
		}
		r := edgeRel(t, edges)
		results := make([]*value.Relation, len(allTCAlgos))
		for i, algo := range allTCAlgos {
			out, _, _, err := TransitiveClosure(r, 0, 1, algo)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, algo, err)
			}
			results[i] = out
		}
		if !results[0].SameSet(results[1]) || !results[0].SameSet(results[2]) {
			t.Fatalf("trial %d: algorithms disagree: %d / %d / %d pairs",
				trial, results[0].Len(), results[1].Len(), results[2].Len())
		}
	}
}

func TestClosureTree(t *testing.T) {
	// Binary tree of depth 3: ancestor pairs = sum over nodes of depth.
	var edges [][2]int64
	for i := int64(1); i <= 7; i++ {
		edges = append(edges, [2]int64{i, 2 * i}, [2]int64{i, 2*i + 1})
	}
	r := edgeRel(t, edges)
	out, _, _, err := TransitiveClosure(r, 0, 1, TCSemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	// Each of 14 children has its ancestors: depth-1 nodes (2) have 1,
	// depth-2 (4) have 2, depth-3 (8) have 3: 2*1+4*2+8*3 = 34.
	if out.Len() != 34 {
		t.Errorf("tree ancestor pairs = %d, want 34", out.Len())
	}
}

func TestClosureSelfLoopsAndNulls(t *testing.T) {
	s := value.MustSchema("src", "INT", "dst", "INT")
	r := value.NewRelation(s)
	r.Append(value.Ints(1, 1)) // self loop
	r.Append(value.NewTuple(value.Null, value.NewInt(2)))
	r.Append(value.NewTuple(value.NewInt(2), value.Null))
	for _, algo := range allTCAlgos {
		out, _, _, err := TransitiveClosure(r, 0, 1, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		// NULL edges are dropped; the self loop stays.
		if out.Len() != 1 || out.Tuples[0][0].Int() != 1 {
			t.Errorf("%v: closure = %v", algo, out.Tuples)
		}
	}
}

func TestClosureEmptyAndValidation(t *testing.T) {
	s := value.MustSchema("src", "INT", "dst", "INT")
	empty := value.NewRelation(s)
	for _, algo := range allTCAlgos {
		out, _, _, err := TransitiveClosure(empty, 0, 1, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if out.Len() != 0 {
			t.Errorf("%v: empty closure = %v", algo, out.Tuples)
		}
	}
	if _, _, _, err := TransitiveClosure(empty, 0, 0, TCNaive); err == nil {
		t.Error("same column twice should error")
	}
	if _, _, _, err := TransitiveClosure(empty, 0, 9, TCNaive); err == nil {
		t.Error("out-of-range column should error")
	}
	if _, _, _, err := TransitiveClosure(empty, 0, 1, TCAlgorithm(99)); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestClosureDuplicateEdges(t *testing.T) {
	r := edgeRel(t, [][2]int64{{0, 1}, {0, 1}, {1, 2}, {1, 2}})
	out, _, _, err := TransitiveClosure(r, 0, 1, TCSemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 { // (0,1),(1,2),(0,2)
		t.Errorf("dup-edge closure = %v", out.Tuples)
	}
}

func TestClosureWiderSchema(t *testing.T) {
	// Closure columns may sit anywhere in a wider schema.
	s := value.MustSchema("label", "VARCHAR", "src", "INT", "ignore", "FLOAT", "dst", "INT")
	r := value.NewRelation(s)
	r.Append(value.NewTuple(value.NewString("e"), value.NewInt(1), value.NewFloat(0), value.NewInt(2)))
	r.Append(value.NewTuple(value.NewString("e"), value.NewInt(2), value.NewFloat(0), value.NewInt(3)))
	out, _, _, err := TransitiveClosure(r, 1, 3, TCSemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("closure = %v", out.Tuples)
	}
	if out.Schema.Column(0).Name != "src" || out.Schema.Column(1).Name != "dst" {
		t.Errorf("closure schema = %v", out.Schema)
	}
}

func TestReachable(t *testing.T) {
	r := edgeRel(t, chain(10))
	out, _, err := Reachable(r, 0, 1, []value.Value{value.NewInt(7)})
	if err != nil {
		t.Fatal(err)
	}
	// From 7 on a 0..10 chain: reaches 8, 9, 10.
	if out.Len() != 3 {
		t.Errorf("reachable from 7 = %v", out.Tuples)
	}
	for _, row := range out.Tuples {
		if row[0].Int() != 7 {
			t.Errorf("source column wrong: %v", row)
		}
	}
	// Multiple sources.
	out, _, err = Reachable(r, 0, 1, []value.Value{value.NewInt(9), value.NewInt(8), value.Null})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 { // 9→10, 8→9, 8→10
		t.Errorf("multi-source reachable = %v", out.Tuples)
	}
	// Missing source: empty result.
	out, _, err = Reachable(r, 0, 1, []value.Value{value.NewInt(999)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("unknown source reachable = %v", out.Tuples)
	}
	if _, _, err := Reachable(r, 0, 0, nil); err == nil {
		t.Error("bad columns should error")
	}
}

// TestReachableMatchesClosureRestriction: Reachable(srcs) must equal the
// closure filtered to those sources.
func TestReachableMatchesClosureRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var edges [][2]int64
	for i := 0; i < 40; i++ {
		edges = append(edges, [2]int64{rng.Int63n(12), rng.Int63n(12)})
	}
	r := edgeRel(t, edges)
	full, _, _, err := TransitiveClosure(r, 0, 1, TCSemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	src := value.NewInt(3)
	reach, _, err := Reachable(r, 0, 1, []value.Value{src})
	if err != nil {
		t.Fatal(err)
	}
	want := value.NewRelation(full.Schema)
	for _, p := range full.Tuples {
		if value.Equal(p[0], src) {
			want.Append(p)
		}
	}
	if !reach.SameSet(want) {
		t.Errorf("Reachable = %d pairs, closure restriction = %d", reach.Len(), want.Len())
	}
}

func TestClosureStringValues(t *testing.T) {
	// The operator is type-generic: parent/child by name.
	s := value.MustSchema("parent", "VARCHAR", "child", "VARCHAR")
	r := value.NewRelation(s)
	for _, e := range [][2]string{{"ann", "bob"}, {"bob", "cat"}, {"ann", "dan"}} {
		r.Append(value.NewTuple(value.NewString(e[0]), value.NewString(e[1])))
	}
	out, _, _, err := TransitiveClosure(r, 0, 1, TCSemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 { // +(ann,cat)
		t.Errorf("string closure = %v", out.Tuples)
	}
	found := false
	for _, row := range out.Tuples {
		if row[0].Str() == "ann" && row[1].Str() == "cat" {
			found = true
		}
	}
	if !found {
		t.Error("derived pair (ann,cat) missing")
	}
}

func TestTCAlgorithmString(t *testing.T) {
	for algo, want := range map[TCAlgorithm]string{TCNaive: "naive", TCSemiNaive: "semi-naive", TCSmart: "smart"} {
		if algo.String() != want {
			t.Errorf("%d.String() = %q", algo, algo.String())
		}
	}
	if fmt.Sprint(TCAlgorithm(9)) != "?" {
		t.Error("unknown algorithm should render ?")
	}
}
