package algebra

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/value"
)

func deptRel(t *testing.T) *value.Relation {
	s := value.MustSchema("name", "VARCHAR", "budget", "INT")
	return rel(t, s,
		value.NewTuple(value.NewString("eng"), value.NewInt(1000)),
		value.NewTuple(value.NewString("ops"), value.NewInt(500)),
		value.NewTuple(value.NewString("sales"), value.NewInt(700)),
	)
}

func TestHashJoin(t *testing.T) {
	emp, dept := empRel(t), deptRel(t)
	out, st, err := HashJoin(emp, dept, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// eng: 2 employees, ops: 2, hr: no department, sales: no employees.
	if out.Len() != 4 {
		t.Fatalf("join produced %d rows: %v", out.Len(), out.Tuples)
	}
	if out.Schema.Len() != emp.Schema.Len()+dept.Schema.Len() {
		t.Errorf("join schema = %v", out.Schema)
	}
	for _, row := range out.Tuples {
		if row[1].Str() != row[3].Str() {
			t.Errorf("key mismatch in %v", row)
		}
	}
	if st.TuplesEmitted != 4 || st.Hashes == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestJoinMethodsAgree(t *testing.T) {
	// Property: hash, merge and nested-loop joins return the same bag on
	// random data, including duplicates.
	r := rand.New(rand.NewSource(21))
	ls := value.MustSchema("a", "INT", "b", "INT")
	rs := value.MustSchema("c", "INT", "d", "INT")
	for trial := 0; trial < 20; trial++ {
		l := value.NewRelation(ls)
		rr := value.NewRelation(rs)
		for i := 0; i < 50; i++ {
			l.Append(value.Ints(r.Int63n(10), r.Int63n(100)))
			rr.Append(value.Ints(r.Int63n(10), r.Int63n(100)))
		}
		hj, _, err := HashJoin(l, rr, []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		mj, _, err := MergeJoin(l, rr, []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		pred := mustPred(t, expr.NewCmp(expr.EQ, expr.NewCol("a"), expr.NewCol("c")), ls.Concat(rs))
		nl, _, err := NestedLoopJoin(l, rr, pred)
		if err != nil {
			t.Fatal(err)
		}
		if !hj.SameBag(mj) {
			t.Fatalf("trial %d: hash and merge joins differ: %d vs %d rows", trial, hj.Len(), mj.Len())
		}
		if !hj.SameBag(nl) {
			t.Fatalf("trial %d: hash and nested-loop joins differ: %d vs %d rows", trial, hj.Len(), nl.Len())
		}
	}
}

func TestJoinNullKeys(t *testing.T) {
	s := value.MustSchema("k", "INT")
	l := value.NewRelation(s)
	l.Append(value.NewTuple(value.Null), value.Ints(1))
	r := value.NewRelation(s)
	r.Append(value.NewTuple(value.Null), value.Ints(1))
	for _, join := range []func() (*value.Relation, Stats, error){
		func() (*value.Relation, Stats, error) { return HashJoin(l, r, []int{0}, []int{0}) },
		func() (*value.Relation, Stats, error) { return MergeJoin(l, r, []int{0}, []int{0}) },
	} {
		out, _, err := join()
		if err != nil {
			t.Fatal(err)
		}
		// NULL keys never match, even against other NULLs.
		if out.Len() != 1 {
			t.Errorf("NULL-key join produced %d rows: %v", out.Len(), out.Tuples)
		}
	}
}

func TestJoinValidation(t *testing.T) {
	emp, dept := empRel(t), deptRel(t)
	if _, _, err := HashJoin(emp, dept, nil, nil); err == nil {
		t.Error("empty keys should error")
	}
	if _, _, err := HashJoin(emp, dept, []int{0}, []int{0, 1}); err == nil {
		t.Error("mismatched key arity should error")
	}
	if _, _, err := HashJoin(emp, dept, []int{9}, []int{0}); err == nil {
		t.Error("bad left key should error")
	}
	if _, _, err := MergeJoin(emp, dept, []int{0}, []int{9}); err == nil {
		t.Error("bad right key should error")
	}
}

func TestCrossProduct(t *testing.T) {
	emp, dept := empRel(t), deptRel(t)
	out, _, err := NestedLoopJoin(emp, dept, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != emp.Len()*dept.Len() {
		t.Errorf("cross product = %d rows", out.Len())
	}
}

func TestThetaJoin(t *testing.T) {
	emp, dept := empRel(t), deptRel(t)
	// salary < budget/5: a non-equi join.
	joined := emp.Schema.Concat(dept.Schema)
	pred := mustPred(t, expr.NewCmp(expr.LT,
		expr.NewCol("salary"),
		expr.NewArith(expr.Div, expr.NewCol("budget"), expr.NewConst(value.NewInt(5)))), joined)
	out, _, err := NestedLoopJoin(emp, dept, pred)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range out.Tuples {
		if row[2].Int() >= row[4].Int()/5 {
			t.Errorf("theta predicate violated in %v", row)
		}
	}
	if out.Len() == 0 {
		t.Error("theta join should produce some rows")
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	emp, dept := empRel(t), deptRel(t)
	semi, _, err := SemiJoin(emp, dept, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Employees in departments that exist: eng+ops = 4.
	if semi.Len() != 4 {
		t.Errorf("semi join = %d rows", semi.Len())
	}
	if semi.Schema.Len() != emp.Schema.Len() {
		t.Error("semi join must keep the left schema")
	}
	anti, _, err := AntiJoin(emp, dept, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if anti.Len() != 1 || anti.Tuples[0][1].Str() != "hr" {
		t.Errorf("anti join = %v", anti.Tuples)
	}
	// semi + anti partition the left side.
	if semi.Len()+anti.Len() != emp.Len() {
		t.Error("semi and anti joins must partition the left input")
	}
	if _, _, err := SemiJoin(emp, dept, []int{9}, []int{0}); err == nil {
		t.Error("bad key should error")
	}
	if _, _, err := AntiJoin(emp, dept, nil, nil); err == nil {
		t.Error("empty keys should error")
	}
}

func TestAntiJoinNulls(t *testing.T) {
	s := value.MustSchema("k", "INT")
	l := value.NewRelation(s)
	l.Append(value.NewTuple(value.Null))
	r := value.NewRelation(s)
	r.Append(value.Ints(1))
	out, _, err := AntiJoin(l, r, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// A NULL key has no match, so it survives the anti join.
	if out.Len() != 1 {
		t.Errorf("NULL anti join = %v", out.Tuples)
	}
}

func TestHashJoinBuildSideChoice(t *testing.T) {
	// Joining a big with a small relation must produce identical output
	// regardless of which side is bigger (build-side selection).
	s := value.MustSchema("k", "INT")
	small := value.NewRelation(s)
	big := value.NewRelation(s)
	for i := 0; i < 3; i++ {
		small.Append(value.Ints(int64(i)))
	}
	for i := 0; i < 100; i++ {
		big.Append(value.Ints(int64(i % 5)))
	}
	a, _, err := HashJoin(small, big, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := HashJoin(big, small, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Errorf("asymmetric join sizes: %d vs %d", a.Len(), b.Len())
	}
	// Column order differs (l ++ r), so compare keys only.
	if a.Len() != 60 {
		t.Errorf("join size = %d, want 60", a.Len())
	}
}
