package algebra

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/value"
)

// This file holds the columnar counterparts of the row operators: Select
// narrows a selection vector without touching tuples, Project remaps
// column pointers, the hash join builds and probes over column slices and
// gathers its output column-wise, and Aggregate folds column values into
// the same group states the row operator uses. Each operator CONSUMES its
// input batches: selection vectors of consumed inputs go back to the
// sync.Pool, so a caller must not touch a batch after passing it in.

// SelectBatch filters b with a vectorized predicate, producing a batch
// that shares b's column vectors under a narrowed selection vector — no
// tuple is materialized. b is consumed.
func SelectBatch(b *value.Batch, f *expr.VecFilter) (*value.Batch, Stats, error) {
	dst := value.GetSel()
	dst, err := f.Filter(b, b.Sel, dst)
	if err != nil {
		value.PutSel(dst)
		return nil, Stats{}, fmt.Errorf("algebra: select: %w", err)
	}
	read := b.Len()
	if b.Sel != nil {
		value.PutSel(b.Sel)
		b.Sel = nil
	}
	out := &value.Batch{Schema: b.Schema, Cols: b.Cols, Sel: dst, Rows: b.Rows}
	return out, Stats{TuplesRead: read, TuplesEmitted: len(dst)}, nil
}

// ProjectBatch restricts b to the given column positions — a pure column
// remap sharing vectors and selection with b.
func ProjectBatch(b *value.Batch, cols []int, schema *value.Schema) (*value.Batch, Stats, error) {
	for _, c := range cols {
		if c < 0 || c >= len(b.Cols) {
			return nil, Stats{}, fmt.Errorf("algebra: project column %d out of range for %s", c, b.Schema)
		}
	}
	n := b.Len()
	return b.Project(cols, schema), Stats{TuplesRead: n, TuplesEmitted: n}, nil
}

// HashJoinBatch equi-joins two batches on the given key columns, building
// a hash table of physical row indices on the smaller input and gathering
// the matches column-wise into a dense output batch. Output column order
// is l ++ r and match order follows the row HashJoin exactly (probe
// order, build-insertion order within a key). Both inputs are consumed.
func HashJoinBatch(l, r *value.Batch, lcols, rcols []int) (*value.Batch, Stats, error) {
	if len(lcols) == 0 || len(lcols) != len(rcols) {
		return nil, Stats{}, fmt.Errorf("algebra: join needs matching non-empty key lists, got %v and %v", lcols, rcols)
	}
	for _, c := range lcols {
		if c < 0 || c >= len(l.Cols) {
			return nil, Stats{}, fmt.Errorf("algebra: left join key %d out of range for %s", c, l.Schema)
		}
	}
	for _, c := range rcols {
		if c < 0 || c >= len(r.Cols) {
			return nil, Stats{}, fmt.Errorf("algebra: right join key %d out of range for %s", c, r.Schema)
		}
	}
	stats := Stats{TuplesRead: l.Len() + r.Len()}

	buildLeft := l.Len() <= r.Len()
	build, probe := l, r
	bcols, pcols := lcols, rcols
	if !buildLeft {
		build, probe = r, l
		bcols, pcols = rcols, lcols
	}

	// Hash table of physical row indices: one chain per distinct key,
	// linked through `next` so appending a row never re-allocates the
	// map key string.
	type chain struct{ head, tail int32 }
	table := make(map[string]*chain, build.Len())
	next := make([]int32, build.Rows)
	var keyBuf []byte
	bn := build.Len()
	for i := 0; i < bn; i++ {
		row := int32(build.Row(i))
		if batchNullOn(build, row, bcols) {
			continue // NULL keys never join
		}
		keyBuf = build.AppendKey(keyBuf[:0], int(row), bcols)
		next[row] = -1
		if c, ok := table[string(keyBuf)]; ok {
			next[c.tail] = row
			c.tail = row
		} else {
			table[string(keyBuf)] = &chain{head: row, tail: row}
		}
	}
	stats.Hashes += bn

	// Probe in input order, collecting matched (left, right) physical
	// row pairs in output order.
	lIdx := value.GetSel()
	rIdx := value.GetSel()
	pn := probe.Len()
	for i := 0; i < pn; i++ {
		row := int32(probe.Row(i))
		if batchNullOn(probe, row, pcols) {
			continue
		}
		stats.Hashes++
		keyBuf = probe.AppendKey(keyBuf[:0], int(row), pcols)
		c, ok := table[string(keyBuf)]
		if !ok {
			continue
		}
		for m := c.head; ; m = next[m] {
			if buildLeft {
				lIdx = append(lIdx, m)
				rIdx = append(rIdx, row)
			} else {
				lIdx = append(lIdx, row)
				rIdx = append(rIdx, m)
			}
			if m == c.tail {
				break
			}
		}
	}

	out := &value.Batch{
		Schema: l.Schema.Concat(r.Schema),
		Cols:   make([]*value.Vec, 0, len(l.Cols)+len(r.Cols)),
		Rows:   len(lIdx),
	}
	for _, vec := range l.Cols {
		out.Cols = append(out.Cols, vec.Gather(lIdx))
	}
	for _, vec := range r.Cols {
		out.Cols = append(out.Cols, vec.Gather(rIdx))
	}
	stats.TuplesEmitted = len(lIdx)
	value.PutSel(lIdx)
	value.PutSel(rIdx)
	if l.Sel != nil {
		value.PutSel(l.Sel)
		l.Sel = nil
	}
	if r.Sel != nil {
		value.PutSel(r.Sel)
		r.Sel = nil
	}
	return out, stats, nil
}

func batchNullOn(b *value.Batch, row int32, cols []int) bool {
	for _, c := range cols {
		if b.Cols[c].IsNull(int(row)) {
			return true
		}
	}
	return false
}

// AggregateBatch groups b by the groupBy columns (empty = one global
// group) and computes the aggregate specs, reading input values straight
// from the column vectors. Output schema, group order (first-seen) and
// NULL handling match the row Aggregate exactly; the result is a
// row-oriented Relation (aggregation is a materialization point). b is
// consumed.
func AggregateBatch(b *value.Batch, groupBy []int, specs []AggSpec) (*value.Relation, Stats, error) {
	for _, c := range groupBy {
		if c < 0 || c >= len(b.Cols) {
			return nil, Stats{}, fmt.Errorf("algebra: group-by column %d out of range for %s", c, b.Schema)
		}
	}
	for _, sp := range specs {
		if sp.Col >= len(b.Cols) {
			return nil, Stats{}, fmt.Errorf("algebra: aggregate column %d out of range for %s", sp.Col, b.Schema)
		}
		if sp.Col < 0 && sp.Func != Count {
			return nil, Stats{}, fmt.Errorf("algebra: %s(*) is not defined", sp.Func)
		}
	}

	// Output schema, mirroring the row Aggregate's naming.
	cols := make([]value.Column, 0, len(groupBy)+len(specs))
	for _, c := range groupBy {
		cols = append(cols, b.Schema.Column(c))
	}
	for _, sp := range specs {
		name := sp.As
		if name == "" {
			if sp.Col < 0 {
				name = "COUNT(*)"
			} else {
				name = fmt.Sprintf("%s(%s)", sp.Func, b.Schema.Column(sp.Col).Name)
			}
		}
		k := value.KindInt
		if sp.Col >= 0 {
			k = resultKind(sp.Func, b.Schema.Column(sp.Col).Kind)
		}
		cols = append(cols, value.Column{Name: name, Kind: k})
	}
	out := value.NewRelation(value.NewSchema(cols...))

	type group struct {
		key    value.Tuple
		states []aggState
	}
	groups := map[string]*group{}
	var order []string
	var keyBuf []byte
	n := b.Len()
	for i := 0; i < n; i++ {
		row := b.Row(i)
		keyBuf = b.AppendKey(keyBuf[:0], row, groupBy)
		g := groups[string(keyBuf)]
		if g == nil {
			k := string(keyBuf)
			key := make(value.Tuple, len(groupBy))
			for gi, c := range groupBy {
				key[gi] = b.Cols[c].Value(row)
			}
			g = &group{key: key, states: make([]aggState, len(specs))}
			groups[k] = g
			order = append(order, k)
		}
		for si, sp := range specs {
			if sp.Col < 0 {
				g.states[si].count++ // COUNT(*) counts rows, NULLs included
			} else {
				g.states[si].observe(b.Cols[sp.Col].Value(row))
			}
		}
	}
	if len(groupBy) == 0 && len(order) == 0 {
		groups[""] = &group{key: value.Tuple{}, states: make([]aggState, len(specs))}
		order = append(order, "")
	}
	for _, k := range order {
		g := groups[k]
		row := make(value.Tuple, 0, len(groupBy)+len(specs))
		row = append(row, g.key...)
		for si, sp := range specs {
			row = append(row, g.states[si].result(sp.Func))
		}
		out.Tuples = append(out.Tuples, row)
	}
	if b.Sel != nil {
		value.PutSel(b.Sel)
		b.Sel = nil
	}
	return out, Stats{TuplesRead: n, TuplesEmitted: out.Len(), Hashes: n}, nil
}
