package algebra

import (
	"container/heap"
	"fmt"

	"repro/internal/fragment"
	"repro/internal/value"
)

// SplitByHash partitions tuples into n hash buckets on the key columns —
// the splitter behind a hash Exchange. It delegates to
// fragment.PartitionByHash so exchange bucketing and repartitioning
// share one hash assignment: sibling exchanges with equal n are always
// bucket-compatible (tuples that agree on their respective key values
// land in the same bucket index on both sides). Tuples are
// redistributed by reference, never copied or mutated (CSE-shared
// inputs stay intact). Stats counts one hash per input tuple so the
// caller can charge the owning PE.
func SplitByHash(tuples []value.Tuple, cols []int, n int) ([][]value.Tuple, Stats) {
	return fragment.PartitionByHash(tuples, cols, n), Stats{TuplesRead: len(tuples), Hashes: len(tuples)}
}

// runHeap is the k-way merge frontier: one cursor per sorted run,
// ordered by the current tuple under the sort key.
type runHeap struct {
	runs [][]value.Tuple
	pos  []int
	ord  []int // heap of run indices
	cols []int
	desc []bool
}

func (h *runHeap) Len() int { return len(h.ord) }
func (h *runHeap) Less(i, j int) bool {
	a, b := h.ord[i], h.ord[j]
	// value.CompareOnDesc is the same comparator Relation.SortOn (and
	// therefore algebra.Sort) ordered the runs with.
	c := value.CompareOnDesc(h.runs[a][h.pos[a]], h.runs[b][h.pos[b]], h.cols, h.desc)
	if c != 0 {
		return c < 0
	}
	return a < b // stable across runs for deterministic output
}
func (h *runHeap) Swap(i, j int)         { h.ord[i], h.ord[j] = h.ord[j], h.ord[i] }
func (h *runHeap) Push(x any)            { h.ord = append(h.ord, x.(int)) }
func (h *runHeap) Pop() any              { x := h.ord[len(h.ord)-1]; h.ord = h.ord[:len(h.ord)-1]; return x }
func (h *runHeap) top() int              { return h.ord[0] }
func (h *runHeap) cur(r int) value.Tuple { return h.runs[r][h.pos[r]] }

// MergeSortedRuns k-way-merges per-partition sorted runs into one
// ordered relation — the coordinator side of a partitioned Sort. Each
// run must already be ordered on (cols, desc); the output interleaves
// them with a loser heap, so merging costs O(N log k) comparisons
// (counted in Stats.Compares) instead of a full re-sort.
func MergeSortedRuns(runs []*value.Relation, cols []int, desc []bool) (*value.Relation, Stats, error) {
	if len(runs) == 0 {
		return nil, Stats{}, fmt.Errorf("algebra: no sorted runs to merge")
	}
	for _, r := range runs {
		for _, c := range cols {
			if c < 0 || c >= r.Schema.Len() {
				return nil, Stats{}, fmt.Errorf("algebra: merge column %d out of range for %s", c, r.Schema)
			}
		}
	}
	out := value.NewRelation(runs[0].Schema)
	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	out.Tuples = make([]value.Tuple, 0, total)
	h := &runHeap{cols: cols, desc: desc}
	for _, r := range runs {
		h.runs = append(h.runs, r.Tuples)
		h.pos = append(h.pos, 0)
	}
	for i, run := range h.runs {
		if len(run) > 0 {
			h.ord = append(h.ord, i)
		}
	}
	heap.Init(h)
	stats := Stats{TuplesRead: total}
	for h.Len() > 0 {
		r := h.top()
		out.Tuples = append(out.Tuples, h.cur(r))
		h.pos[r]++
		stats.Compares++ // frontier comparison per emitted tuple (log k sift below)
		if h.pos[r] < len(h.runs[r]) {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
		// Approximate the sift cost: log2(k) comparisons per fix.
		for k := h.Len(); k > 1; k >>= 1 {
			stats.Compares++
		}
	}
	stats.TuplesEmitted = out.Len()
	return out, stats, nil
}
