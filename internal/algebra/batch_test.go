package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/value"
)

// batchRel builds a moderately sized relation with duplicate keys and
// NULLs for the columnar operator differentials.
func batchRel(n int, seed int64) *value.Relation {
	r := rand.New(rand.NewSource(seed))
	s := value.MustSchema("k", "INT", "tag", "VARCHAR", "v", "INT")
	rel := value.NewRelation(s)
	tags := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		k := value.NewInt(r.Int63n(int64(n / 4)))
		if r.Intn(20) == 0 {
			k = value.Null
		}
		v := value.NewInt(r.Int63n(1000))
		if r.Intn(15) == 0 {
			v = value.Null
		}
		rel.Append(value.NewTuple(k, value.NewString(tags[r.Intn(len(tags))]), v))
	}
	return rel
}

func toBatch(t *testing.T, rel *value.Relation) *value.Batch {
	t.Helper()
	b := value.NewBatchFrom(rel.Schema, rel.Tuples)
	if b == nil {
		t.Fatal("NewBatchFrom declined")
	}
	return b
}

// requireSameOrder asserts two relations are tuple-for-tuple identical —
// the columnar operators promise the row operators' output order, not
// just the same bag.
func requireSameOrder(t *testing.T, name string, got, want *value.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", name, got.Len(), want.Len())
	}
	for i := range want.Tuples {
		if !value.EqualTuples(got.Tuples[i], want.Tuples[i]) {
			t.Fatalf("%s row %d: %v != %v", name, i, got.Tuples[i], want.Tuples[i])
		}
	}
}

func TestSelectBatchMatchesSelect(t *testing.T) {
	rel := batchRel(500, 1)
	e := expr.NewAnd(
		expr.NewCmp(expr.GT, expr.NewCol("v"), expr.NewConst(value.NewInt(200))),
		expr.NewCmp(expr.NE, expr.NewCol("tag"), expr.NewConst(value.NewString("b"))))
	want, _, err := Select(rel, mustPred(t, expr.Clone(e), rel.Schema))
	if err != nil {
		t.Fatal(err)
	}
	vf, err := expr.CompileVecFilter(expr.Clone(e), rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := SelectBatch(toBatch(t, rel), vf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameOrder(t, "select", out.Materialize(), want)
	if st.TuplesRead != rel.Len() || st.TuplesEmitted != want.Len() {
		t.Errorf("stats = %+v", st)
	}
	// Filtering an already-selected batch narrows further.
	vf2, err := expr.CompileVecFilter(
		expr.NewCmp(expr.LT, expr.NewCol("v"), expr.NewConst(value.NewInt(800))), rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := SelectBatch(out, vf2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range out2.Materialize().Tuples {
		if tup[2].IsNull() || tup[2].Int() <= 200 || tup[2].Int() >= 800 {
			t.Fatalf("narrowed selection kept %v", tup)
		}
	}
}

func TestProjectBatchMatchesProject(t *testing.T) {
	rel := batchRel(200, 2)
	want, _, err := Project(rel, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ProjectBatch(toBatch(t, rel), []int{2, 0}, rel.Schema.Project([]int{2, 0}))
	if err != nil {
		t.Fatal(err)
	}
	requireSameOrder(t, "project", out.Materialize(), want)
	if _, _, err := ProjectBatch(toBatch(t, rel), []int{5}, rel.Schema); err == nil {
		t.Error("out-of-range projection accepted")
	}
}

func TestHashJoinBatchMatchesHashJoin(t *testing.T) {
	l := batchRel(400, 3)
	r := batchRel(300, 4)
	for _, swap := range []bool{false, true} {
		ll, rr := l, r
		if swap { // exercise both build sides
			ll, rr = r, l
		}
		want, _, err := HashJoin(ll, rr, []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		out, st, err := HashJoinBatch(toBatch(t, ll), toBatch(t, rr), []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		requireSameOrder(t, fmt.Sprintf("join swap=%v", swap), out.Materialize(), want)
		if st.TuplesEmitted != want.Len() {
			t.Errorf("swap=%v stats = %+v", swap, st)
		}
	}
	if _, _, err := HashJoinBatch(toBatch(t, l), toBatch(t, r), nil, nil); err == nil {
		t.Error("empty key list accepted")
	}
	if _, _, err := HashJoinBatch(toBatch(t, l), toBatch(t, r), []int{9}, []int{0}); err == nil {
		t.Error("out-of-range key accepted")
	}
}

func TestAggregateBatchMatchesAggregate(t *testing.T) {
	rel := batchRel(600, 5)
	cases := []struct {
		groupBy []int
		specs   []AggSpec
	}{
		{[]int{1}, []AggSpec{
			{Func: Count, Col: -1, As: "n"},
			{Func: Sum, Col: 2, As: "s"},
			{Func: Min, Col: 2, As: "lo"},
			{Func: Max, Col: 2, As: "hi"},
			{Func: Avg, Col: 2, As: "m"},
		}},
		{[]int{0, 1}, []AggSpec{{Func: Count, Col: 2}}}, // COUNT(v) skips NULLs; NULL group keys group together
		{nil, []AggSpec{{Func: Count, Col: -1, As: "n"}, {Func: Sum, Col: 2, As: "s"}}},
	}
	for ci, c := range cases {
		want, _, err := Aggregate(rel, c.groupBy, c.specs)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := AggregateBatch(toBatch(t, rel), c.groupBy, c.specs)
		if err != nil {
			t.Fatal(err)
		}
		if got.Schema.String() != want.Schema.String() {
			t.Errorf("case %d: schema %s != %s", ci, got.Schema, want.Schema)
		}
		requireSameOrder(t, fmt.Sprintf("aggregate case %d", ci), got, want)
	}
	// Empty input, global aggregate: exactly one row, like the row path.
	empty := value.NewRelation(rel.Schema)
	want, _, err := Aggregate(empty, nil, cases[2].specs)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := AggregateBatch(toBatch(t, empty), nil, cases[2].specs)
	if err != nil {
		t.Fatal(err)
	}
	requireSameOrder(t, "empty global aggregate", got, want)
	if _, _, err := AggregateBatch(toBatch(t, rel), []int{7}, nil); err == nil {
		t.Error("out-of-range group column accepted")
	}
	if _, _, err := AggregateBatch(toBatch(t, rel), nil, []AggSpec{{Func: Sum, Col: -1}}); err == nil {
		t.Error("SUM(*) accepted")
	}
}

// TestSelectBatchAllocs pins the steady-state allocation budget of the
// hot filter kernel: with the selection-vector pool warm, filtering a
// 4096-row batch must cost a small constant number of allocations —
// none of them per-row.
func TestSelectBatchAllocs(t *testing.T) {
	rel := batchRel(4096, 6)
	b := toBatch(t, rel)
	vf, err := expr.CompileVecFilter(
		expr.NewCmp(expr.GT, expr.NewCol("v"), expr.NewConst(value.NewInt(500))), rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool so the measured runs recycle one right-sized buffer.
	out, _, err := SelectBatch(b, vf)
	if err != nil {
		t.Fatal(err)
	}
	value.PutSel(out.Sel)
	allocs := testing.AllocsPerRun(50, func() {
		o, _, err := SelectBatch(b, vf)
		if err != nil {
			t.Fatal(err)
		}
		value.PutSel(o.Sel)
	})
	if allocs > 4 {
		t.Errorf("SelectBatch allocates %.0f times per 4096-row batch; want <= 4", allocs)
	}
}

// TestProjectBatchAllocs: a projection is a pure pointer remap — batch
// header and column slice only, regardless of row count.
func TestProjectBatchAllocs(t *testing.T) {
	rel := batchRel(4096, 7)
	b := toBatch(t, rel)
	out := rel.Schema.Project([]int{2, 0})
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := ProjectBatch(b, []int{2, 0}, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("ProjectBatch allocates %.0f times; want <= 2 (header + column slice)", allocs)
	}
}
