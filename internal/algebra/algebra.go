// Package algebra implements the extended relational algebra that gives
// PRISMAlog its semantics (paper §2.3: "the semantics of PRISMAlog is
// defined in terms of extensions of the relational algebra") and that
// One-Fragment Managers execute locally (§2.5), including the transitive
// closure operator for recursive queries.
//
// Operators are set-at-a-time over materialized value.Relation inputs —
// PRISMA is explicitly set-oriented ("one of the main differences between
// pure Prolog and PRISMAlog is that the latter is set-oriented, which
// makes it more suitable for parallel evaluation"). Each operator returns
// a fresh Relation and a Stats record the engine uses to charge virtual
// CPU time to processing elements.
package algebra

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/value"
)

// Stats counts the abstract work an operator performed; the engine maps
// these onto the machine's cost model.
type Stats struct {
	TuplesRead    int // input tuples touched
	TuplesEmitted int // output tuples produced
	Hashes        int // hash computations
	Compares      int // tuple comparisons
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.TuplesRead += other.TuplesRead
	s.TuplesEmitted += other.TuplesEmitted
	s.Hashes += other.Hashes
	s.Compares += other.Compares
}

// Select filters r with a compiled predicate (the OFM fast path).
func Select(r *value.Relation, pred *expr.Predicate) (*value.Relation, Stats, error) {
	out := value.NewRelation(r.Schema)
	kept, err := pred.FilterInto(filterDst(r.Len()), r.Tuples)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("algebra: select: %w", err)
	}
	out.Tuples = kept
	return out, Stats{TuplesRead: r.Len(), TuplesEmitted: len(kept)}, nil
}

// filterDst sizes a selection's output slice from the input cardinality:
// small inputs keep full capacity (point queries emit most of what they
// read), large ones start at a fraction and grow only for low-selectivity
// predicates.
func filterDst(in int) []value.Tuple {
	if in == 0 {
		return nil
	}
	capHint := in
	if in > 1024 {
		capHint = in / 4
	}
	return make([]value.Tuple, 0, capHint)
}

// SelectInterpreted filters r by interpreting e tuple-at-a-time — the
// baseline the paper's expression compiler is measured against (E4).
// e must already be bound against r.Schema.
func SelectInterpreted(r *value.Relation, e expr.Expr) (*value.Relation, Stats, error) {
	out := value.NewRelation(r.Schema)
	out.Tuples = filterDst(r.Len())
	for _, t := range r.Tuples {
		v, err := e.Eval(t)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("algebra: select (interpreted): %w", err)
		}
		if expr.Truthy(v) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, Stats{TuplesRead: r.Len(), TuplesEmitted: out.Len()}, nil
}

// Project restricts r to the given column positions.
func Project(r *value.Relation, cols []int) (*value.Relation, Stats, error) {
	for _, c := range cols {
		if c < 0 || c >= r.Schema.Len() {
			return nil, Stats{}, fmt.Errorf("algebra: project column %d out of range for %s", c, r.Schema)
		}
	}
	out := value.NewRelation(r.Schema.Project(cols))
	out.Tuples = make([]value.Tuple, r.Len())
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Project(cols)
	}
	return out, Stats{TuplesRead: r.Len(), TuplesEmitted: r.Len()}, nil
}

// ProjectExprs computes arbitrary expressions per tuple with a compiled
// projector.
func ProjectExprs(r *value.Relation, proj *expr.Projector) (*value.Relation, Stats, error) {
	rows, err := proj.ApplyBatch(r.Tuples)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("algebra: project: %w", err)
	}
	out := value.NewRelation(proj.Schema())
	out.Tuples = rows
	return out, Stats{TuplesRead: r.Len(), TuplesEmitted: len(rows)}, nil
}

// Distinct removes duplicates (set semantics).
func Distinct(r *value.Relation) (*value.Relation, Stats) {
	out := value.NewRelation(r.Schema)
	seen := make(map[string]struct{}, r.Len())
	for _, t := range r.Tuples {
		k := t.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Tuples = append(out.Tuples, t)
	}
	return out, Stats{TuplesRead: r.Len(), TuplesEmitted: out.Len(), Hashes: r.Len()}
}

// Limit returns the first n tuples (negative n means no limit).
func Limit(r *value.Relation, n int) (*value.Relation, Stats) {
	out := value.NewRelation(r.Schema)
	if n < 0 || n > r.Len() {
		n = r.Len()
	}
	out.Tuples = append(out.Tuples, r.Tuples[:n]...)
	return out, Stats{TuplesRead: n, TuplesEmitted: n}
}

// Sort orders r on the given columns; desc[i] reverses key i. The input
// is not modified.
func Sort(r *value.Relation, cols []int, desc []bool) (*value.Relation, Stats, error) {
	for _, c := range cols {
		if c < 0 || c >= r.Schema.Len() {
			return nil, Stats{}, fmt.Errorf("algebra: sort column %d out of range for %s", c, r.Schema)
		}
	}
	out := value.NewRelation(r.Schema)
	out.Tuples = append([]value.Tuple(nil), r.Tuples...)
	out.SortOn(cols, desc)
	n := r.Len()
	log := 0
	for v := n; v > 1; v >>= 1 {
		log++
	}
	return out, Stats{TuplesRead: n, TuplesEmitted: n, Compares: n * log}, nil
}
