package algebra

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/value"
)

func rel(t *testing.T, schema *value.Schema, rows ...value.Tuple) *value.Relation {
	t.Helper()
	r := value.NewRelation(schema)
	r.Append(rows...)
	return r
}

func empRel(t *testing.T) *value.Relation {
	s := value.MustSchema("id", "INT", "dept", "VARCHAR", "salary", "INT")
	return rel(t, s,
		value.NewTuple(value.NewInt(1), value.NewString("eng"), value.NewInt(100)),
		value.NewTuple(value.NewInt(2), value.NewString("eng"), value.NewInt(200)),
		value.NewTuple(value.NewInt(3), value.NewString("ops"), value.NewInt(150)),
		value.NewTuple(value.NewInt(4), value.NewString("ops"), value.NewInt(50)),
		value.NewTuple(value.NewInt(5), value.NewString("hr"), value.NewInt(80)),
	)
}

func mustPred(t *testing.T, e expr.Expr, s *value.Schema) *expr.Predicate {
	t.Helper()
	p, err := expr.CompilePredicate(e, s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSelectCompiledAndInterpretedAgree(t *testing.T) {
	r := empRel(t)
	e := expr.NewCmp(expr.GT, expr.NewCol("salary"), expr.NewConst(value.NewInt(90)))
	pred := mustPred(t, expr.Clone(e), r.Schema)
	compiled, cs, err := Select(r, pred)
	if err != nil {
		t.Fatal(err)
	}
	bound := expr.Clone(e)
	if _, err := expr.Bind(bound, r.Schema); err != nil {
		t.Fatal(err)
	}
	interp, is, err := SelectInterpreted(r, bound)
	if err != nil {
		t.Fatal(err)
	}
	if !compiled.SameBag(interp) {
		t.Errorf("compiled %v != interpreted %v", compiled.Tuples, interp.Tuples)
	}
	if compiled.Len() != 3 {
		t.Errorf("selected %d rows, want 3", compiled.Len())
	}
	if cs.TuplesRead != 5 || is.TuplesRead != 5 {
		t.Errorf("stats: %+v, %+v", cs, is)
	}
}

func TestProject(t *testing.T) {
	r := empRel(t)
	out, st, err := Project(r, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Column(0).Name != "dept" || out.Schema.Column(1).Name != "id" {
		t.Errorf("schema = %v", out.Schema)
	}
	if out.Len() != 5 || st.TuplesEmitted != 5 {
		t.Errorf("rows = %d", out.Len())
	}
	if out.Tuples[0][0].Str() != "eng" || out.Tuples[0][1].Int() != 1 {
		t.Errorf("first = %v", out.Tuples[0])
	}
	if _, _, err := Project(r, []int{7}); err == nil {
		t.Error("out-of-range projection should error")
	}
}

func TestProjectExprs(t *testing.T) {
	r := empRel(t)
	proj, err := expr.CompileProjector(
		[]expr.Expr{expr.NewCol("id"), expr.NewArith(expr.Mul, expr.NewCol("salary"), expr.NewConst(value.NewInt(2)))},
		[]string{"id", "double_salary"}, r.Schema)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ProjectExprs(r, proj)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tuples[1][1].Int() != 400 {
		t.Errorf("double salary = %v", out.Tuples[1])
	}
}

func TestDistinctAndLimit(t *testing.T) {
	s := value.MustSchema("x", "INT")
	r := rel(t, s, value.Ints(1), value.Ints(2), value.Ints(1), value.Ints(3), value.Ints(2))
	d, st := Distinct(r)
	if d.Len() != 3 || st.TuplesEmitted != 3 {
		t.Errorf("Distinct = %v", d.Tuples)
	}
	l, _ := Limit(r, 2)
	if l.Len() != 2 {
		t.Errorf("Limit(2) = %d", l.Len())
	}
	l, _ = Limit(r, -1)
	if l.Len() != 5 {
		t.Errorf("Limit(-1) = %d", l.Len())
	}
	l, _ = Limit(r, 99)
	if l.Len() != 5 {
		t.Errorf("Limit(99) = %d", l.Len())
	}
}

func TestSortOperator(t *testing.T) {
	r := empRel(t)
	out, st, err := Sort(r, []int{2}, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Tuples[0][2].Int() != 200 || out.Tuples[4][2].Int() != 50 {
		t.Errorf("descending salary sort = %v", out.Tuples)
	}
	if st.Compares == 0 {
		t.Error("sort must report comparisons")
	}
	// Input untouched.
	if r.Tuples[0][0].Int() != 1 {
		t.Error("Sort mutated its input")
	}
	if _, _, err := Sort(r, []int{9}, nil); err == nil {
		t.Error("out-of-range sort should error")
	}
}

func TestAggregateGlobal(t *testing.T) {
	r := empRel(t)
	out, _, err := Aggregate(r, nil, []AggSpec{
		{Func: Count, Col: -1, As: "n"},
		{Func: Sum, Col: 2, As: "total"},
		{Func: Avg, Col: 2, As: "mean"},
		{Func: Min, Col: 2, As: "lo"},
		{Func: Max, Col: 2, As: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("global aggregate rows = %d", out.Len())
	}
	row := out.Tuples[0]
	if row[0].Int() != 5 || row[1].Int() != 580 || row[2].Float() != 116 ||
		row[3].Int() != 50 || row[4].Int() != 200 {
		t.Errorf("aggregate row = %v", row)
	}
}

func TestAggregateGrouped(t *testing.T) {
	r := empRel(t)
	out, _, err := Aggregate(r, []int{1}, []AggSpec{
		{Func: Count, Col: -1, As: "n"},
		{Func: Sum, Col: 2, As: "total"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("groups = %d", out.Len())
	}
	byDept := map[string][2]int64{}
	for _, row := range out.Tuples {
		byDept[row[0].Str()] = [2]int64{row[1].Int(), row[2].Int()}
	}
	if byDept["eng"] != [2]int64{2, 300} || byDept["ops"] != [2]int64{2, 200} || byDept["hr"] != [2]int64{1, 80} {
		t.Errorf("grouped = %v", byDept)
	}
}

func TestAggregateNullHandling(t *testing.T) {
	s := value.MustSchema("g", "INT", "v", "INT")
	r := rel(t, s,
		value.NewTuple(value.NewInt(1), value.NewInt(10)),
		value.NewTuple(value.NewInt(1), value.Null),
		value.NewTuple(value.NewInt(2), value.Null),
	)
	out, _, err := Aggregate(r, []int{0}, []AggSpec{
		{Func: Count, Col: -1, As: "star"},
		{Func: Count, Col: 1, As: "vals"},
		{Func: Sum, Col: 1, As: "sum"},
		{Func: Min, Col: 1, As: "min"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]value.Tuple{}
	for _, row := range out.Tuples {
		got[row[0].Int()] = row
	}
	// Group 1: COUNT(*)=2, COUNT(v)=1, SUM=10, MIN=10.
	g1 := got[1]
	if g1[1].Int() != 2 || g1[2].Int() != 1 || g1[3].Int() != 10 || g1[4].Int() != 10 {
		t.Errorf("group 1 = %v", g1)
	}
	// Group 2: all-NULL values: COUNT(v)=0, SUM/MIN are NULL.
	g2 := got[2]
	if g2[1].Int() != 1 || g2[2].Int() != 0 || !g2[3].IsNull() || !g2[4].IsNull() {
		t.Errorf("group 2 = %v", g2)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	s := value.MustSchema("v", "INT")
	r := value.NewRelation(s)
	out, _, err := Aggregate(r, nil, []AggSpec{{Func: Count, Col: -1, As: "n"}, {Func: Sum, Col: 0, As: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuples[0][0].Int() != 0 || !out.Tuples[0][1].IsNull() {
		t.Errorf("empty global aggregate = %v", out.Tuples)
	}
	// Grouped over empty input: no rows.
	out, _, err = Aggregate(r, []int{0}, []AggSpec{{Func: Count, Col: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("empty grouped aggregate = %v", out.Tuples)
	}
}

func TestAggregateValidation(t *testing.T) {
	r := empRel(t)
	if _, _, err := Aggregate(r, []int{9}, nil); err == nil {
		t.Error("bad group-by column should error")
	}
	if _, _, err := Aggregate(r, nil, []AggSpec{{Func: Sum, Col: 9}}); err == nil {
		t.Error("bad aggregate column should error")
	}
	if _, _, err := Aggregate(r, nil, []AggSpec{{Func: Sum, Col: -1}}); err == nil {
		t.Error("SUM(*) should error")
	}
}

func TestParseAggFunc(t *testing.T) {
	for name, want := range map[string]AggFunc{"count": Count, "SUM": Sum, "Avg": Avg, "MIN": Min, "max": Max} {
		got, ok := ParseAggFunc(name)
		if !ok || got != want {
			t.Errorf("ParseAggFunc(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseAggFunc("median"); ok {
		t.Error("unknown aggregate accepted")
	}
}

func TestMergeAggregates(t *testing.T) {
	// Split empRel into two fragments, aggregate each with PartialSpecs,
	// merge, and compare against the single-site result.
	r := empRel(t)
	f1 := rel(t, r.Schema, r.Tuples[0], r.Tuples[1])
	f2 := rel(t, r.Schema, r.Tuples[2], r.Tuples[3], r.Tuples[4])

	finalSpecs := []AggSpec{
		{Func: Count, Col: -1, As: "n"},
		{Func: Sum, Col: 2, As: "total"},
		{Func: Avg, Col: 2, As: "mean"},
		{Func: Min, Col: 2, As: "lo"},
		{Func: Max, Col: 2, As: "hi"},
	}
	partialSpecs := PartialSpecs(finalSpecs)

	var partials []*value.Relation
	for _, f := range []*value.Relation{f1, f2} {
		p, _, err := Aggregate(f, []int{1}, partialSpecs)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	merged, _, err := MergeAggregates(partials, 1, finalSpecs)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := Aggregate(r, []int{1}, finalSpecs)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.SameSet(direct) {
		t.Errorf("merged:\n%v\ndirect:\n%v", merged, direct)
	}
	if _, _, err := MergeAggregates(nil, 0, finalSpecs); err == nil {
		t.Error("empty merge should error")
	}
}

func TestMergeAggregatesGlobalEmpty(t *testing.T) {
	s := value.MustSchema("v", "INT")
	empty := value.NewRelation(s)
	specs := []AggSpec{{Func: Count, Col: -1, As: "n"}}
	p, _, err := Aggregate(empty, nil, PartialSpecs(specs))
	if err != nil {
		t.Fatal(err)
	}
	merged, _, err := MergeAggregates([]*value.Relation{p}, 0, specs)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 1 || merged.Tuples[0][0].Int() != 0 {
		t.Errorf("merged empty = %v", merged.Tuples)
	}
}
