package algebra

import (
	"fmt"

	"repro/internal/value"
)

func checkCompatible(op string, l, r *value.Relation) error {
	if !value.EqualSchema(l.Schema, r.Schema) {
		return fmt.Errorf("algebra: %s needs union-compatible schemas, got %s and %s", op, l.Schema, r.Schema)
	}
	return nil
}

// Union returns the set union of l and r (duplicates collapsed), keeping
// l's schema.
func Union(l, r *value.Relation) (*value.Relation, Stats, error) {
	if err := checkCompatible("union", l, r); err != nil {
		return nil, Stats{}, err
	}
	out := value.NewRelation(l.Schema)
	seen := make(map[string]struct{}, l.Len()+r.Len())
	for _, src := range []*value.Relation{l, r} {
		for _, t := range src.Tuples {
			k := t.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, Stats{TuplesRead: l.Len() + r.Len(), TuplesEmitted: out.Len(), Hashes: l.Len() + r.Len()}, nil
}

// UnionAll concatenates l and r (bag semantics).
func UnionAll(l, r *value.Relation) (*value.Relation, Stats, error) {
	if err := checkCompatible("union all", l, r); err != nil {
		return nil, Stats{}, err
	}
	out := value.NewRelation(l.Schema)
	out.Tuples = make([]value.Tuple, 0, l.Len()+r.Len())
	out.Tuples = append(out.Tuples, l.Tuples...)
	out.Tuples = append(out.Tuples, r.Tuples...)
	return out, Stats{TuplesRead: out.Len(), TuplesEmitted: out.Len()}, nil
}

// Diff returns the set difference l \ r.
func Diff(l, r *value.Relation) (*value.Relation, Stats, error) {
	if err := checkCompatible("difference", l, r); err != nil {
		return nil, Stats{}, err
	}
	drop := make(map[string]struct{}, r.Len())
	for _, t := range r.Tuples {
		drop[t.Key()] = struct{}{}
	}
	out := value.NewRelation(l.Schema)
	seen := make(map[string]struct{}, l.Len())
	for _, t := range l.Tuples {
		k := t.Key()
		if _, gone := drop[k]; gone {
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Tuples = append(out.Tuples, t)
	}
	return out, Stats{TuplesRead: l.Len() + r.Len(), TuplesEmitted: out.Len(), Hashes: l.Len() + r.Len()}, nil
}

// Intersect returns the set intersection of l and r.
func Intersect(l, r *value.Relation) (*value.Relation, Stats, error) {
	if err := checkCompatible("intersection", l, r); err != nil {
		return nil, Stats{}, err
	}
	keep := make(map[string]struct{}, r.Len())
	for _, t := range r.Tuples {
		keep[t.Key()] = struct{}{}
	}
	out := value.NewRelation(l.Schema)
	seen := make(map[string]struct{}, l.Len())
	for _, t := range l.Tuples {
		k := t.Key()
		if _, ok := keep[k]; !ok {
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Tuples = append(out.Tuples, t)
	}
	return out, Stats{TuplesRead: l.Len() + r.Len(), TuplesEmitted: out.Len(), Hashes: l.Len() + r.Len()}, nil
}
