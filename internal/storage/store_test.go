package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/value"
)

func empSchema() *value.Schema {
	return value.MustSchema("id", "INT", "name", "VARCHAR", "salary", "FLOAT")
}

func emp(id int64, name string, salary float64) value.Tuple {
	return value.NewTuple(value.NewInt(id), value.NewString(name), value.NewFloat(salary))
}

func TestInsertGetDelete(t *testing.T) {
	s := NewStore(empSchema())
	id, err := s.Insert(emp(1, "ann", 100))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(id)
	if !ok || got[1].Str() != "ann" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if !s.Delete(id) {
		t.Error("Delete failed")
	}
	if s.Delete(id) {
		t.Error("double Delete should fail")
	}
	if _, ok := s.Get(id); ok {
		t.Error("Get after Delete should fail")
	}
	if s.Len() != 0 {
		t.Errorf("Len after delete = %d", s.Len())
	}
	if _, ok := s.Get(-1); ok {
		t.Error("negative id should miss")
	}
	if _, ok := s.Get(99); ok {
		t.Error("out-of-range id should miss")
	}
}

func TestRowIDGenerations(t *testing.T) {
	s := NewStore(empSchema())
	id1, _ := s.Insert(emp(1, "a", 1))
	s.Delete(id1)
	id2, _ := s.Insert(emp(2, "b", 2))
	// The slot is reused (no unbounded growth)...
	if id1.slot() != id2.slot() {
		t.Errorf("tombstone slot not reused: slots %d then %d", id1.slot(), id2.slot())
	}
	// ...but the id is fresh, so the stale id misses rather than aliasing.
	if id1 == id2 {
		t.Error("row ids must never be reused")
	}
	if _, ok := s.Get(id1); ok {
		t.Error("stale id resolved to the new tuple")
	}
	if got, ok := s.Get(id2); !ok || got[0].Int() != 2 {
		t.Errorf("fresh id lookup = %v, %v", got, ok)
	}
	// Stale ids can't delete or update the new occupant either.
	if s.Delete(id1) {
		t.Error("stale delete succeeded")
	}
	if err := s.Update(id1, emp(3, "c", 3)); err == nil {
		t.Error("stale update succeeded")
	}
}

func TestTypeChecking(t *testing.T) {
	s := NewStore(empSchema())
	if _, err := s.Insert(value.Ints(1, 2)); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := s.Insert(value.NewTuple(value.NewString("x"), value.NewString("y"), value.NewFloat(1))); err == nil {
		t.Error("kind mismatch should error")
	}
	// NULLs are allowed in any column.
	if _, err := s.Insert(value.NewTuple(value.Null, value.Null, value.Null)); err != nil {
		t.Errorf("NULL tuple rejected: %v", err)
	}
	// Ints widen into float columns.
	id, err := s.Insert(value.NewTuple(value.NewInt(1), value.NewString("x"), value.NewInt(42)))
	if err != nil {
		t.Fatalf("int into float column rejected: %v", err)
	}
	got, _ := s.Get(id)
	if got[2].Kind() != value.KindFloat || got[2].Float() != 42 {
		t.Errorf("widening produced %v", got[2])
	}
}

func TestUpdate(t *testing.T) {
	s := NewStore(empSchema())
	id, _ := s.Insert(emp(1, "ann", 100))
	if err := s.Update(id, emp(1, "ann", 200)); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(id)
	if got[2].Float() != 200 {
		t.Errorf("Update did not stick: %v", got)
	}
	if err := s.Update(99, emp(1, "x", 1)); err == nil {
		t.Error("updating a missing row should error")
	}
	if err := s.Update(id, value.Ints(1)); err == nil {
		t.Error("bad tuple should error")
	}
}

func TestScanAndSnapshot(t *testing.T) {
	s := NewStore(empSchema())
	for i := 0; i < 10; i++ {
		if _, err := s.Insert(emp(int64(i), fmt.Sprintf("e%d", i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	s.Scan(func(id RowID, tp value.Tuple) bool { seen++; return true })
	if seen != 10 {
		t.Errorf("Scan visited %d", seen)
	}
	// Early stop.
	seen = 0
	s.Scan(func(id RowID, tp value.Tuple) bool { seen++; return seen < 3 })
	if seen != 3 {
		t.Errorf("early-stop Scan visited %d", seen)
	}
	if got := len(s.Snapshot()); got != 10 {
		t.Errorf("Snapshot = %d tuples", got)
	}
}

func TestMemAccounting(t *testing.T) {
	s := NewStore(empSchema())
	var tracked int64
	s.OnMemChange(func(d int64) { tracked += d })
	id, _ := s.Insert(emp(1, "somebody", 1))
	if s.MemSize() <= 0 || tracked != s.MemSize() {
		t.Errorf("mem %d tracked %d", s.MemSize(), tracked)
	}
	if err := s.Update(id, emp(1, "somebody with a much longer name", 1)); err != nil {
		t.Fatal(err)
	}
	if tracked != s.MemSize() {
		t.Errorf("after update: mem %d tracked %d", s.MemSize(), tracked)
	}
	s.Delete(id)
	if s.MemSize() != 0 || tracked != 0 {
		t.Errorf("after delete: mem %d tracked %d", s.MemSize(), tracked)
	}
}

func TestClear(t *testing.T) {
	s := NewStore(empSchema())
	if _, err := s.CreateHashIndex("by_id", []int{0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Insert(emp(int64(i), "x", 1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Clear()
	if s.Len() != 0 || s.MemSize() != 0 {
		t.Errorf("Clear left %d rows, %d bytes", s.Len(), s.MemSize())
	}
	idx, ok := s.HashIndexOn([]int{0})
	if !ok || idx.Len() != 0 {
		t.Error("Clear should empty indexes but keep them defined")
	}
	// Store still usable.
	if _, err := s.Insert(emp(9, "y", 2)); err != nil {
		t.Fatal(err)
	}
	if got := idx.Lookup([]value.Value{value.NewInt(9)}); len(got) != 1 {
		t.Errorf("index after Clear+Insert = %v", got)
	}
}

func TestMarkings(t *testing.T) {
	s := NewStore(empSchema())
	var ids []RowID
	for i := 0; i < 5; i++ {
		id, _ := s.Insert(emp(int64(i), "x", 1))
		ids = append(ids, id)
	}
	s.Mark("hot", ids[0], ids[2])
	if !s.Marked("hot", ids[0]) || s.Marked("hot", ids[1]) {
		t.Error("marking membership wrong")
	}
	if got := len(s.MarkedRows("hot")); got != 2 {
		t.Errorf("MarkedRows = %d", got)
	}
	// Deleting a row clears its markings.
	s.Delete(ids[0])
	if s.Marked("hot", ids[0]) {
		t.Error("deleted row still marked")
	}
	s.Unmark("hot", ids[2])
	if len(s.MarkedRows("hot")) != 0 {
		t.Error("Unmark by id failed")
	}
	s.Mark("all", ids[1], ids[3])
	s.Unmark("all")
	if len(s.MarkedRows("all")) != 0 {
		t.Error("Unmark all failed")
	}
	// Marking a dead row is a no-op.
	s.Mark("x", ids[0])
	if len(s.MarkedRows("x")) != 0 {
		t.Error("marking a deleted row should be ignored")
	}
}

func TestCursorStability(t *testing.T) {
	s := NewStore(empSchema())
	var ids []RowID
	for i := 0; i < 6; i++ {
		id, _ := s.Insert(emp(int64(i), "x", 1))
		ids = append(ids, id)
	}
	cur := s.OpenCursor()
	if cur.Remaining() != 6 {
		t.Errorf("Remaining = %d", cur.Remaining())
	}
	// Delete a not-yet-visited row and insert a new one mid-iteration.
	_, _, _ = cur.Next()
	s.Delete(ids[3])
	if _, err := s.Insert(emp(99, "new", 9)); err != nil {
		t.Fatal(err)
	}
	count := 1
	for {
		_, tp, ok := cur.Next()
		if !ok {
			break
		}
		count++
		if tp[0].Int() == 99 {
			t.Error("cursor saw a row inserted after open")
		}
		if tp[0].Int() == 3 {
			t.Error("cursor saw a deleted row")
		}
	}
	if count != 5 {
		t.Errorf("cursor visited %d rows, want 5", count)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore(empSchema())
	if _, err := s.CreateHashIndex("by_id", []int{0}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id, err := s.Insert(emp(int64(w*1000+i), "w", float64(i)))
				if err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					s.Delete(id)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Scan(func(RowID, value.Tuple) bool { return true })
			_ = s.Snapshot()
		}
	}()
	wg.Wait()
	// 4 writers * 200 inserts, a third deleted.
	want := 4 * (200 - 67)
	if s.Len() != want {
		t.Errorf("Len = %d, want %d", s.Len(), want)
	}
}
