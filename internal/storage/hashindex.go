package storage

import "repro/internal/value"

// HashIndex maps a key (one or more columns) to the row ids holding it.
// It is maintained by the owning Store under the store's lock; the
// exported lookup methods take the store lock via the Store facade, so
// direct use is read-only and safe only alongside external
// synchronization (the OFM serializes writes through its transaction
// layer).
type HashIndex struct {
	cols    []int
	buckets map[string][]RowID
}

func newHashIndex(cols []int) *HashIndex {
	return &HashIndex{cols: append([]int(nil), cols...), buckets: map[string][]RowID{}}
}

// Cols returns the indexed column positions.
func (ix *HashIndex) Cols() []int { return append([]int(nil), ix.cols...) }

// Len returns the number of distinct keys.
func (ix *HashIndex) Len() int { return len(ix.buckets) }

func (ix *HashIndex) add(id RowID, t value.Tuple) {
	k := t.KeyOn(ix.cols)
	ix.buckets[k] = append(ix.buckets[k], id)
}

func (ix *HashIndex) remove(id RowID, t value.Tuple) {
	k := t.KeyOn(ix.cols)
	ids := ix.buckets[k]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(ix.buckets, k)
	} else {
		ix.buckets[k] = ids
	}
}

func (ix *HashIndex) clear() { ix.buckets = map[string][]RowID{} }

// Lookup returns the row ids whose indexed columns equal key (one value
// per indexed column).
func (ix *HashIndex) Lookup(key []value.Value) []RowID {
	if len(key) != len(ix.cols) {
		return nil
	}
	var buf []byte
	for _, v := range key {
		buf = value.AppendValue(buf, v)
	}
	ids := ix.buckets[string(buf)]
	return append([]RowID(nil), ids...)
}

// LookupTuple returns the row ids matching the indexed columns of t
// (a probe tuple laid out like the stored schema).
func (ix *HashIndex) LookupTuple(t value.Tuple) []RowID {
	ids := ix.buckets[t.KeyOn(ix.cols)]
	return append([]RowID(nil), ids...)
}
