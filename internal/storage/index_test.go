package storage

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/value"
)

func TestHashIndexBasics(t *testing.T) {
	s := NewStore(empSchema())
	idx, err := s.CreateHashIndex("by_name", []int{1})
	if err != nil {
		t.Fatal(err)
	}
	idA, _ := s.Insert(emp(1, "ann", 10))
	idB, _ := s.Insert(emp(2, "bob", 20))
	idA2, _ := s.Insert(emp(3, "ann", 30))

	got := idx.Lookup([]value.Value{value.NewString("ann")})
	if len(got) != 2 {
		t.Fatalf("Lookup(ann) = %v", got)
	}
	found := map[RowID]bool{}
	for _, id := range got {
		found[id] = true
	}
	if !found[idA] || !found[idA2] {
		t.Errorf("Lookup(ann) = %v, want {%d,%d}", got, idA, idA2)
	}
	if got := idx.Lookup([]value.Value{value.NewString("zed")}); len(got) != 0 {
		t.Errorf("Lookup(zed) = %v", got)
	}
	if got := idx.Lookup([]value.Value{}); got != nil {
		t.Errorf("arity-mismatched lookup = %v", got)
	}
	_ = idB

	// Delete maintains the index.
	s.Delete(idA)
	if got := idx.Lookup([]value.Value{value.NewString("ann")}); len(got) != 1 || got[0] != idA2 {
		t.Errorf("after delete Lookup(ann) = %v", got)
	}
	// Update re-keys.
	if err := s.Update(idA2, emp(3, "carol", 30)); err != nil {
		t.Fatal(err)
	}
	if got := idx.Lookup([]value.Value{value.NewString("ann")}); len(got) != 0 {
		t.Errorf("after update Lookup(ann) = %v", got)
	}
	if got := idx.Lookup([]value.Value{value.NewString("carol")}); len(got) != 1 {
		t.Errorf("after update Lookup(carol) = %v", got)
	}
}

func TestHashIndexBuiltOverExistingRows(t *testing.T) {
	s := NewStore(empSchema())
	if _, err := s.Insert(emp(1, "ann", 10)); err != nil {
		t.Fatal(err)
	}
	idx, err := s.CreateHashIndex("by_id", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Lookup([]value.Value{value.NewInt(1)}); len(got) != 1 {
		t.Errorf("index over existing rows = %v", got)
	}
}

func TestIndexValidation(t *testing.T) {
	s := NewStore(empSchema())
	if _, err := s.CreateHashIndex("x", nil); err == nil {
		t.Error("empty column list should error")
	}
	if _, err := s.CreateHashIndex("x", []int{9}); err == nil {
		t.Error("out-of-range column should error")
	}
	if _, err := s.CreateHashIndex("dup", []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateHashIndex("dup", []int{1}); err == nil {
		t.Error("duplicate index name should error")
	}
	if _, err := s.CreateOrderedIndex("dup", []int{1}); err == nil {
		t.Error("name collision across index kinds should error")
	}
	if _, err := s.CreateOrderedIndex("ord", []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateHashIndex("ord", []int{0}); err == nil {
		t.Error("name collision across index kinds should error")
	}
}

func TestIndexDiscovery(t *testing.T) {
	s := NewStore(empSchema())
	if _, err := s.CreateHashIndex("h", []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateOrderedIndex("o", []int{2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.HashIndexOn([]int{0, 1}); !ok {
		t.Error("HashIndexOn missed")
	}
	if _, ok := s.HashIndexOn([]int{0}); ok {
		t.Error("HashIndexOn matched a prefix; must be exact")
	}
	if _, ok := s.OrderedIndexOn(2); !ok {
		t.Error("OrderedIndexOn missed")
	}
	if _, ok := s.OrderedIndexOn(0); ok {
		t.Error("OrderedIndexOn false positive")
	}
}

func TestOrderedIndexRange(t *testing.T) {
	s := NewStore(empSchema())
	idx, err := s.CreateOrderedIndex("by_salary", []int{2})
	if err != nil {
		t.Fatal(err)
	}
	salaries := []float64{50, 10, 40, 20, 30}
	for i, sal := range salaries {
		if _, err := s.Insert(emp(int64(i), "e", sal)); err != nil {
			t.Fatal(err)
		}
	}
	var got []float64
	idx.Range(nil, nil, func(id RowID, key value.Tuple) bool {
		got = append(got, key[0].Float())
		return true
	})
	if !sort.Float64sAreSorted(got) || len(got) != 5 {
		t.Fatalf("full range = %v", got)
	}
	// Bounded range [20, 40].
	got = nil
	idx.Range(value.NewTuple(value.NewFloat(20)), value.NewTuple(value.NewFloat(40)),
		func(id RowID, key value.Tuple) bool {
			got = append(got, key[0].Float())
			return true
		})
	if len(got) != 3 || got[0] != 20 || got[2] != 40 {
		t.Errorf("range [20,40] = %v", got)
	}
	// Early stop.
	count := 0
	idx.Range(nil, nil, func(RowID, value.Tuple) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
	// Min/Max.
	if _, k, ok := idx.Min(); !ok || k[0].Float() != 10 {
		t.Errorf("Min = %v", k)
	}
	if _, k, ok := idx.Max(); !ok || k[0].Float() != 50 {
		t.Errorf("Max = %v", k)
	}
}

func TestOrderedIndexMaintenance(t *testing.T) {
	s := NewStore(empSchema())
	idx, err := s.CreateOrderedIndex("by_id", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	ids := map[int64]RowID{}
	live := map[int64]bool{}
	for i := 0; i < 2000; i++ {
		k := r.Int63n(500)
		if live[k] {
			s.Delete(ids[k])
			delete(live, k)
			delete(ids, k)
		} else {
			id, err := s.Insert(emp(k, "x", float64(k)))
			if err != nil {
				t.Fatal(err)
			}
			ids[k] = id
			live[k] = true
		}
	}
	if idx.Len() != len(live) {
		t.Fatalf("index has %d entries, store has %d live", idx.Len(), len(live))
	}
	var prev int64 = -1
	n := 0
	idx.Range(nil, nil, func(id RowID, key value.Tuple) bool {
		k := key[0].Int()
		if k < prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if !live[k] {
			t.Fatalf("index holds dead key %d", k)
		}
		prev = k
		n++
		return true
	})
	if n != len(live) {
		t.Fatalf("range visited %d, want %d", n, len(live))
	}
}

func TestOrderedIndexEmpty(t *testing.T) {
	s := NewStore(empSchema())
	idx, err := s.CreateOrderedIndex("e", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := idx.Min(); ok {
		t.Error("Min on empty index")
	}
	if _, _, ok := idx.Max(); ok {
		t.Error("Max on empty index")
	}
	called := false
	idx.Range(nil, nil, func(RowID, value.Tuple) bool { called = true; return true })
	if called {
		t.Error("Range on empty index called fn")
	}
	// Removing a missing entry is a no-op.
	idx.remove(5, emp(1, "x", 1))
}

func TestOrderedIndexDuplicateKeys(t *testing.T) {
	s := NewStore(empSchema())
	idx, err := s.CreateOrderedIndex("by_name", []int{1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Insert(emp(1, "same", 1))
	b, _ := s.Insert(emp(2, "same", 2))
	n := 0
	idx.Range(nil, nil, func(RowID, value.Tuple) bool { n++; return true })
	if n != 2 {
		t.Fatalf("duplicate keys stored %d entries", n)
	}
	// Deleting one keeps the other.
	s.Delete(a)
	n = 0
	var last RowID
	idx.Range(nil, nil, func(id RowID, _ value.Tuple) bool { n++; last = id; return true })
	if n != 1 || last != b {
		t.Errorf("after delete: %d entries, last %d", n, last)
	}
}
