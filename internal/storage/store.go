// Package storage provides the main-memory storage structures a
// One-Fragment Manager builds on (paper §2.5: "(various) storage
// structures", "markings and cursor maintenance"): an in-memory heap of
// tuples addressed by row id, hash and ordered (skip-list) secondary
// indexes, marking sets, stable cursors, and an encoded page file that
// models disk-resident data for the main-memory-vs-disk experiment.
package storage

import (
	"fmt"
	"sync"

	"repro/internal/value"
)

// RowID addresses a tuple within one Store. Ids are never reused: a slot
// freed by Delete carries a bumped generation, so stale ids (e.g. held by
// an open Cursor) miss instead of aliasing a newer tuple. The low 40 bits
// are the slot index, the high bits the generation.
type RowID int64

const rowIndexBits = 40

func makeRowID(slot int, gen int64) RowID {
	return RowID(gen<<rowIndexBits | int64(slot))
}

func (id RowID) slot() int  { return int(int64(id) & (1<<rowIndexBits - 1)) }
func (id RowID) gen() int64 { return int64(id) >> rowIndexBits }

// MemChangeFunc observes the store's approximate memory footprint deltas;
// the OFM wires it to its processing element's 16 MB budget.
type MemChangeFunc func(delta int64)

// slot holds one tuple version. MVCC visibility is a pair of commit
// timestamps: begin is the commit that created the version (0 = present
// since load, visible to every snapshot), end is the commit that deleted
// it (0 = still current). A version is visible at snapshot ts iff
// begin <= ts && (end == 0 || end > ts). A slot with tuple == nil is
// free; a slot with end != 0 is a dead version kept for old snapshots
// until Vacuum reclaims it.
type slot struct {
	tuple value.Tuple // nil = free slot
	gen   int64
	begin uint64
	end   uint64
}

func (sl *slot) visibleAt(ts uint64) bool {
	return sl.begin <= ts && (sl.end == 0 || sl.end > ts)
}

// Store is a main-memory multiset of tuples with secondary indexes.
// All methods are safe for concurrent use.
type Store struct {
	schema *value.Schema

	mu      sync.RWMutex
	rows    []slot
	free    []int  // reusable free slot indexes
	count   int    // current versions (end == 0)
	dead    int    // dead versions awaiting Vacuum
	version uint64 // bumped by every mutation; column caches key on it
	memSize int64
	onMem   MemChangeFunc

	hashIdx    map[string]*HashIndex
	orderedIdx map[string]*OrderedIndex
	markings   map[string]map[RowID]struct{}
}

// NewStore creates an empty store for the given schema.
func NewStore(schema *value.Schema) *Store {
	return &Store{
		schema:     schema,
		hashIdx:    map[string]*HashIndex{},
		orderedIdx: map[string]*OrderedIndex{},
		markings:   map[string]map[RowID]struct{}{},
	}
}

// OnMemChange registers the memory accounting hook (nil to disable).
func (s *Store) OnMemChange(fn MemChangeFunc) {
	s.mu.Lock()
	s.onMem = fn
	s.mu.Unlock()
}

// Schema returns the store's tuple schema.
func (s *Store) Schema() *value.Schema { return s.schema }

// Len returns the number of live tuples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// MemSize returns the approximate in-memory footprint in bytes.
func (s *Store) MemSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.memSize
}

// Conform validates t against schema, widening ints into float columns
// in place. It is the type check every ingest path shares.
func Conform(schema *value.Schema, t value.Tuple) error {
	if len(t) != schema.Len() {
		return fmt.Errorf("storage: tuple arity %d does not match schema %s", len(t), schema)
	}
	for i, v := range t {
		want := schema.Column(i).Kind
		if v.IsNull() || v.Kind() == want {
			continue
		}
		// Ints are accepted into float columns (widening).
		if want == value.KindFloat && v.Kind() == value.KindInt {
			t[i] = value.NewFloat(v.Float())
			continue
		}
		return fmt.Errorf("storage: column %s got %s", schema.Column(i).Name, v.Kind())
	}
	return nil
}

// Insert adds a tuple visible to every snapshot (begin timestamp 0) and
// returns its row id. Load and bootstrap paths use it; transactional
// writers use InsertVersion to stamp their commit timestamp.
func (s *Store) Insert(t value.Tuple) (RowID, error) {
	return s.InsertVersion(t, 0)
}

// InsertVersion adds a tuple version whose begin timestamp is the commit
// timestamp ts; snapshots at or after ts see it.
func (s *Store) InsertVersion(t value.Tuple, ts uint64) (RowID, error) {
	if err := Conform(s.schema, t); err != nil {
		return -1, err
	}
	s.mu.Lock()
	var id RowID
	if n := len(s.free); n > 0 {
		si := s.free[n-1]
		s.free = s.free[:n-1]
		s.rows[si].tuple = t
		s.rows[si].begin = ts
		s.rows[si].end = 0
		id = makeRowID(si, s.rows[si].gen)
	} else {
		id = makeRowID(len(s.rows), 0)
		s.rows = append(s.rows, slot{tuple: t, begin: ts})
	}
	s.count++
	s.version++
	delta := int64(t.Size())
	s.memSize += delta
	for _, idx := range s.hashIdx {
		idx.add(id, t)
	}
	for _, idx := range s.orderedIdx {
		idx.add(id, t)
	}
	onMem := s.onMem
	s.mu.Unlock()
	if onMem != nil {
		onMem(delta)
	}
	return id, nil
}

// InsertBatch adds many tuples (one lock acquisition).
func (s *Store) InsertBatch(ts []value.Tuple) ([]RowID, error) {
	ids := make([]RowID, 0, len(ts))
	for _, t := range ts {
		id, err := s.Insert(t)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// valid returns the slot index of a valid id (any version, current or
// dead), or -1. Caller holds a lock.
func (s *Store) valid(id RowID) int {
	si := id.slot()
	if id < 0 || si >= len(s.rows) || s.rows[si].tuple == nil || s.rows[si].gen != id.gen() {
		return -1
	}
	return si
}

// live returns the slot index of a valid current (end == 0) id, or -1.
// Caller holds a lock.
func (s *Store) live(id RowID) int {
	si := s.valid(id)
	if si < 0 || s.rows[si].end != 0 {
		return -1
	}
	return si
}

// Get returns the current tuple at id (misses on dead versions).
func (s *Store) Get(id RowID) (value.Tuple, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	si := s.live(id)
	if si < 0 {
		return nil, false
	}
	return s.rows[si].tuple, true
}

// GetAt returns the version at id as seen by a snapshot at ts.
func (s *Store) GetAt(id RowID, ts uint64) (value.Tuple, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	si := s.valid(id)
	if si < 0 || !s.rows[si].visibleAt(ts) {
		return nil, false
	}
	return s.rows[si].tuple, true
}

// VersionTS returns the begin/end commit timestamps of the version at id
// (current or dead). Writers use it for first-committer-wins validation.
func (s *Store) VersionTS(id RowID) (begin, end uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	si := s.valid(id)
	if si < 0 {
		return 0, 0, false
	}
	return s.rows[si].begin, s.rows[si].end, true
}

// Delete physically removes the current version at id — the non-MVCC
// path (recovery replay, direct store use). Transactional deletes go
// through DeleteVersion so old snapshots keep seeing the tuple.
func (s *Store) Delete(id RowID) bool {
	s.mu.Lock()
	si := s.live(id)
	if si < 0 {
		s.mu.Unlock()
		return false
	}
	s.count--
	s.version++
	delta := s.freeSlot(si, id)
	onMem := s.onMem
	s.mu.Unlock()
	if onMem != nil {
		onMem(delta)
	}
	return true
}

// freeSlot physically reclaims the version in slot si (row id `id`),
// detaching it from indexes and markings. Caller holds s.mu and has
// already adjusted count/dead; returns the memory delta.
func (s *Store) freeSlot(si int, id RowID) int64 {
	t := s.rows[si].tuple
	s.rows[si].tuple = nil
	s.rows[si].gen++ // invalidate outstanding ids for this slot
	s.rows[si].begin = 0
	s.rows[si].end = 0
	s.free = append(s.free, si)
	delta := -int64(t.Size())
	s.memSize += delta
	for _, idx := range s.hashIdx {
		idx.remove(id, t)
	}
	for _, idx := range s.orderedIdx {
		idx.remove(id, t)
	}
	for _, m := range s.markings {
		delete(m, id)
	}
	return delta
}

// DeleteVersion logically deletes the current version at id: its end
// timestamp is set to the commit timestamp ts, so snapshots before ts
// keep seeing it while snapshots at or after ts do not. The version
// stays in memory (and in the indexes — probes filter by visibility)
// until Vacuum passes ts.
func (s *Store) DeleteVersion(id RowID, ts uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	si := s.live(id)
	if si < 0 {
		return false
	}
	s.rows[si].end = ts
	s.count--
	s.dead++
	s.version++
	for _, m := range s.markings {
		delete(m, id)
	}
	return true
}

// Vacuum physically reclaims dead versions no snapshot can see: those
// with end != 0 and end <= horizon. Returns the number reclaimed.
func (s *Store) Vacuum(horizon uint64) int {
	s.mu.Lock()
	reclaimed := 0
	var delta int64
	for si := range s.rows {
		sl := &s.rows[si]
		if sl.tuple == nil || sl.end == 0 || sl.end > horizon {
			continue
		}
		delta += s.freeSlot(si, makeRowID(si, sl.gen))
		s.dead--
		reclaimed++
	}
	if reclaimed > 0 {
		s.version++
	}
	onMem := s.onMem
	s.mu.Unlock()
	if onMem != nil && delta != 0 {
		onMem(delta)
	}
	return reclaimed
}

// DeadVersions returns how many dead versions await Vacuum.
func (s *Store) DeadVersions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dead
}

// Update replaces the tuple at id.
func (s *Store) Update(id RowID, t value.Tuple) error {
	if err := Conform(s.schema, t); err != nil {
		return err
	}
	s.mu.Lock()
	si := s.live(id)
	if si < 0 {
		s.mu.Unlock()
		return fmt.Errorf("storage: row %d does not exist", id)
	}
	old := s.rows[si].tuple
	s.rows[si].tuple = t
	s.version++
	delta := int64(t.Size()) - int64(old.Size())
	s.memSize += delta
	for _, idx := range s.hashIdx {
		idx.remove(id, old)
		idx.add(id, t)
	}
	for _, idx := range s.orderedIdx {
		idx.remove(id, old)
		idx.add(id, t)
	}
	onMem := s.onMem
	s.mu.Unlock()
	if onMem != nil {
		onMem(delta)
	}
	return nil
}

// Scan calls fn for every current tuple until fn returns false. The lock
// is held for the duration; fn must not mutate the store (use a Cursor
// for interleaved mutation).
func (s *Store) Scan(fn func(RowID, value.Tuple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := range s.rows {
		t := s.rows[i].tuple
		if t == nil || s.rows[i].end != 0 {
			continue
		}
		if !fn(makeRowID(i, s.rows[i].gen), t) {
			return
		}
	}
}

// ScanAt calls fn for every tuple version visible to a snapshot at ts
// until fn returns false. Same locking contract as Scan.
func (s *Store) ScanAt(ts uint64, fn func(RowID, value.Tuple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := range s.rows {
		sl := &s.rows[i]
		if sl.tuple == nil || !sl.visibleAt(ts) {
			continue
		}
		if !fn(makeRowID(i, sl.gen), sl.tuple) {
			return
		}
	}
}

// Snapshot returns all current tuples (shared, treat as immutable).
func (s *Store) Snapshot() []value.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]value.Tuple, 0, s.count)
	for i := range s.rows {
		if t := s.rows[i].tuple; t != nil && s.rows[i].end == 0 {
			out = append(out, t)
		}
	}
	return out
}

// Version returns the store's mutation counter. It changes whenever the
// set of versions changes (insert, delete, update, vacuum, clear), so a
// derived structure — e.g. the OFM's fragment column cache — built at one
// Version stays valid exactly until Version differs.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// SnapshotVersions returns every tuple version in the store — current and
// dead — with its begin/end commit timestamps, plus the mutation counter
// the snapshot was taken at, all under one consistent lock acquisition.
// A caller can reconstruct the view of ANY snapshot timestamp from it:
// version i is visible at ts iff begin[i] <= ts && (end[i] == 0 ||
// end[i] > ts). Tuples are shared — treat as immutable.
func (s *Store) SnapshotVersions() (tuples []value.Tuple, begin, end []uint64, version uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.count + s.dead
	tuples = make([]value.Tuple, 0, n)
	begin = make([]uint64, 0, n)
	end = make([]uint64, 0, n)
	for i := range s.rows {
		sl := &s.rows[i]
		if sl.tuple == nil {
			continue
		}
		tuples = append(tuples, sl.tuple)
		begin = append(begin, sl.begin)
		end = append(end, sl.end)
	}
	return tuples, begin, end, s.version
}

// SnapshotAt returns the tuples visible to a snapshot at ts.
func (s *Store) SnapshotAt(ts uint64) []value.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]value.Tuple, 0, s.count)
	for i := range s.rows {
		if sl := &s.rows[i]; sl.tuple != nil && sl.visibleAt(ts) {
			out = append(out, sl.tuple)
		}
	}
	return out
}

// Clear removes everything, keeping indexes defined but empty.
func (s *Store) Clear() {
	s.mu.Lock()
	delta := -s.memSize
	s.rows = nil
	s.free = nil
	s.count = 0
	s.dead = 0
	s.version++
	s.memSize = 0
	for _, idx := range s.hashIdx {
		idx.clear()
	}
	for _, idx := range s.orderedIdx {
		idx.clear()
	}
	s.markings = map[string]map[RowID]struct{}{}
	onMem := s.onMem
	s.mu.Unlock()
	if onMem != nil {
		onMem(delta)
	}
}

// ---------- indexes ----------

// CreateHashIndex builds a hash index named name on the given columns,
// indexing existing rows. Equality lookups use it.
func (s *Store) CreateHashIndex(name string, cols []int) (*HashIndex, error) {
	if err := s.checkCols(cols); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.hashIdx[name]; dup {
		return nil, fmt.Errorf("storage: hash index %q exists", name)
	}
	if _, dup := s.orderedIdx[name]; dup {
		return nil, fmt.Errorf("storage: index %q exists", name)
	}
	idx := newHashIndex(cols)
	for i := range s.rows {
		if t := s.rows[i].tuple; t != nil {
			idx.add(makeRowID(i, s.rows[i].gen), t)
		}
	}
	s.hashIdx[name] = idx
	return idx, nil
}

// CreateOrderedIndex builds a skip-list index named name on the given
// columns. Range scans use it.
func (s *Store) CreateOrderedIndex(name string, cols []int) (*OrderedIndex, error) {
	if err := s.checkCols(cols); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.orderedIdx[name]; dup {
		return nil, fmt.Errorf("storage: ordered index %q exists", name)
	}
	if _, dup := s.hashIdx[name]; dup {
		return nil, fmt.Errorf("storage: index %q exists", name)
	}
	idx := newOrderedIndex(cols)
	for i := range s.rows {
		if t := s.rows[i].tuple; t != nil {
			idx.add(makeRowID(i, s.rows[i].gen), t)
		}
	}
	s.orderedIdx[name] = idx
	return idx, nil
}

func (s *Store) checkCols(cols []int) error {
	if len(cols) == 0 {
		return fmt.Errorf("storage: index needs at least one column")
	}
	for _, c := range cols {
		if c < 0 || c >= s.schema.Len() {
			return fmt.Errorf("storage: index column %d out of range for %s", c, s.schema)
		}
	}
	return nil
}

// HashIndexOn returns a hash index covering exactly cols, if one exists.
func (s *Store) HashIndexOn(cols []int) (*HashIndex, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, idx := range s.hashIdx {
		if equalInts(idx.cols, cols) {
			return idx, true
		}
	}
	return nil, false
}

// OrderedIndexOn returns an ordered index whose leading column is col.
func (s *Store) OrderedIndexOn(col int) (*OrderedIndex, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, idx := range s.orderedIdx {
		if idx.cols[0] == col {
			return idx, true
		}
	}
	return nil, false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------- markings (paper §2.5) ----------

// Mark adds row ids to the named marking set.
func (s *Store) Mark(name string, ids ...RowID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.markings[name]
	if m == nil {
		m = map[RowID]struct{}{}
		s.markings[name] = m
	}
	for _, id := range ids {
		if s.live(id) >= 0 {
			m[id] = struct{}{}
		}
	}
}

// Unmark removes row ids from the named marking (all ids if none given).
func (s *Store) Unmark(name string, ids ...RowID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(ids) == 0 {
		delete(s.markings, name)
		return
	}
	if m := s.markings[name]; m != nil {
		for _, id := range ids {
			delete(m, id)
		}
	}
}

// Marked reports whether a row carries the named marking.
func (s *Store) Marked(name string, id RowID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.markings[name][id]
	return ok
}

// MarkedRows returns the live tuples carrying the named marking.
func (s *Store) MarkedRows(name string) []value.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.markings[name]
	out := make([]value.Tuple, 0, len(m))
	for id := range m {
		if si := s.live(id); si >= 0 {
			out = append(out, s.rows[si].tuple)
		}
	}
	return out
}

// ---------- cursors (paper §2.5) ----------

// Cursor iterates the rows that existed when it was opened, tolerating
// concurrent mutation: deleted rows are skipped, inserts are not seen.
type Cursor struct {
	s   *Store
	ids []RowID
	pos int
}

// OpenCursor captures the current row-id set for stable iteration.
func (s *Store) OpenCursor() *Cursor {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]RowID, 0, s.count)
	for i := range s.rows {
		if s.rows[i].tuple != nil && s.rows[i].end == 0 {
			ids = append(ids, makeRowID(i, s.rows[i].gen))
		}
	}
	return &Cursor{s: s, ids: ids}
}

// Next returns the next surviving tuple; ok is false at the end.
func (c *Cursor) Next() (RowID, value.Tuple, bool) {
	for c.pos < len(c.ids) {
		id := c.ids[c.pos]
		c.pos++
		if t, ok := c.s.Get(id); ok {
			return id, t, true
		}
	}
	return -1, nil, false
}

// Remaining returns how many candidate ids are left (upper bound).
func (c *Cursor) Remaining() int { return len(c.ids) - c.pos }
