package storage

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func TestPageFileRoundTrip(t *testing.T) {
	pf, err := NewPageFile(empSchema(), 256)
	if err != nil {
		t.Fatal(err)
	}
	var want []value.Tuple
	for i := 0; i < 100; i++ {
		tp := emp(int64(i), "name-of-employee", float64(i))
		want = append(want, tp)
		if err := pf.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	if pf.Len() != 100 {
		t.Errorf("Len = %d", pf.Len())
	}
	if pf.PageCount() < 2 {
		t.Errorf("100 tuples should span multiple 256-byte pages, got %d", pf.PageCount())
	}
	var got []value.Tuple
	pages := 0
	err = pf.ScanPages(func(int) { pages++ }, func(tp value.Tuple) bool {
		got = append(got, tp)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if pages != pf.PageCount() {
		t.Errorf("scan visited %d pages, PageCount says %d", pages, pf.PageCount())
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if !value.EqualTuples(got[i], want[i]) {
			t.Fatalf("tuple %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestPageFileEarlyStop(t *testing.T) {
	pf, err := NewPageFile(empSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pf.PageSize() != DefaultPageSize {
		t.Errorf("default page size = %d", pf.PageSize())
	}
	if err := pf.AppendAll([]value.Tuple{emp(1, "a", 1), emp(2, "b", 2), emp(3, "c", 3)}); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := pf.ScanPages(nil, func(value.Tuple) bool { n++; return n < 2 }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestPageFileValidation(t *testing.T) {
	if _, err := NewPageFile(empSchema(), 16); err == nil {
		t.Error("tiny page size should error")
	}
	pf, err := NewPageFile(empSchema(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.Append(value.Ints(1)); err == nil {
		t.Error("arity mismatch should error")
	}
	big := emp(1, strings.Repeat("x", 100), 1)
	if err := pf.Append(big); err == nil {
		t.Error("oversized tuple should error")
	}
}

func TestPageFileBytesGrowth(t *testing.T) {
	pf, err := NewPageFile(empSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Bytes() != 0 || pf.PageCount() != 0 {
		t.Error("fresh page file should be empty")
	}
	if err := pf.Append(emp(1, "a", 1)); err != nil {
		t.Fatal(err)
	}
	b1 := pf.Bytes()
	if b1 <= 0 {
		t.Error("Bytes should grow")
	}
	if err := pf.Append(emp(2, "b", 2)); err != nil {
		t.Fatal(err)
	}
	if pf.Bytes() <= b1 {
		t.Error("Bytes should keep growing")
	}
	if pf.PageCount() != 1 {
		t.Errorf("small data should fit one page, got %d", pf.PageCount())
	}
}
