package storage

import (
	"math/rand"

	"repro/internal/value"
)

// OrderedIndex is a skip list over (key columns, row id), supporting
// ordered range scans — the "various storage structures" a customized
// OFM can be equipped with when its relation definition calls for range
// predicates (paper §2.5). Like HashIndex it is maintained under the
// owning store's lock.
type OrderedIndex struct {
	cols []int
	head *skipNode
	rng  *rand.Rand
	size int
	lvl  int
}

const maxLevel = 24

type skipNode struct {
	key  value.Tuple // the indexed column values
	id   RowID
	next []*skipNode
}

func newOrderedIndex(cols []int) *OrderedIndex {
	return &OrderedIndex{
		cols: append([]int(nil), cols...),
		head: &skipNode{next: make([]*skipNode, maxLevel)},
		rng:  rand.New(rand.NewSource(0x5eed)),
		lvl:  1,
	}
}

// Cols returns the indexed column positions.
func (ix *OrderedIndex) Cols() []int { return append([]int(nil), ix.cols...) }

// Len returns the number of entries.
func (ix *OrderedIndex) Len() int { return ix.size }

// cmp orders (key, id) pairs: key lexicographically, then row id.
func cmpEntry(aKey value.Tuple, aID RowID, bKey value.Tuple, bID RowID) int {
	if c := value.CompareTuples(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aID < bID:
		return -1
	case aID > bID:
		return 1
	default:
		return 0
	}
}

func (ix *OrderedIndex) keyOf(t value.Tuple) value.Tuple {
	k := make(value.Tuple, len(ix.cols))
	for i, c := range ix.cols {
		k[i] = t[c]
	}
	return k
}

func (ix *OrderedIndex) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && ix.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

func (ix *OrderedIndex) add(id RowID, t value.Tuple) {
	key := ix.keyOf(t)
	var update [maxLevel]*skipNode
	x := ix.head
	for i := ix.lvl - 1; i >= 0; i-- {
		for x.next[i] != nil && cmpEntry(x.next[i].key, x.next[i].id, key, id) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	lvl := ix.randomLevel()
	if lvl > ix.lvl {
		for i := ix.lvl; i < lvl; i++ {
			update[i] = ix.head
		}
		ix.lvl = lvl
	}
	node := &skipNode{key: key, id: id, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	ix.size++
}

func (ix *OrderedIndex) remove(id RowID, t value.Tuple) {
	key := ix.keyOf(t)
	var update [maxLevel]*skipNode
	x := ix.head
	for i := ix.lvl - 1; i >= 0; i-- {
		for x.next[i] != nil && cmpEntry(x.next[i].key, x.next[i].id, key, id) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	target := x.next[0]
	if target == nil || cmpEntry(target.key, target.id, key, id) != 0 {
		return
	}
	for i := 0; i < ix.lvl; i++ {
		if update[i].next[i] == target {
			update[i].next[i] = target.next[i]
		}
	}
	for ix.lvl > 1 && ix.head.next[ix.lvl-1] == nil {
		ix.lvl--
	}
	ix.size--
}

func (ix *OrderedIndex) clear() {
	ix.head = &skipNode{next: make([]*skipNode, maxLevel)}
	ix.lvl = 1
	ix.size = 0
}

// Range calls fn for every entry with lo <= key <= hi in key order,
// until fn returns false. Nil lo means unbounded below; nil hi above.
// Bounds are prefixes: a single-value bound against a two-column index
// compares on the first column only.
func (ix *OrderedIndex) Range(lo, hi value.Tuple, fn func(RowID, value.Tuple) bool) {
	x := ix.head
	if lo != nil {
		for i := ix.lvl - 1; i >= 0; i-- {
			for x.next[i] != nil && value.CompareTuples(x.next[i].key[:min(len(x.next[i].key), len(lo))], lo) < 0 {
				x = x.next[i]
			}
		}
	}
	for n := x.next[0]; n != nil; n = n.next[0] {
		if hi != nil && value.CompareTuples(n.key[:min(len(n.key), len(hi))], hi) > 0 {
			return
		}
		if !fn(n.id, n.key) {
			return
		}
	}
}

// Min returns the smallest entry.
func (ix *OrderedIndex) Min() (RowID, value.Tuple, bool) {
	n := ix.head.next[0]
	if n == nil {
		return -1, nil, false
	}
	return n.id, n.key, true
}

// Max returns the largest entry (linear in the bottom level beyond the
// last tower; O(log n) expected via top-level descent).
func (ix *OrderedIndex) Max() (RowID, value.Tuple, bool) {
	x := ix.head
	for i := ix.lvl - 1; i >= 0; i-- {
		for x.next[i] != nil {
			x = x.next[i]
		}
	}
	if x == ix.head {
		return -1, nil, false
	}
	return x.id, x.key, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
