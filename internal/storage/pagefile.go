package storage

import (
	"fmt"

	"repro/internal/value"
)

// PageFile stores tuples in fixed-size encoded pages, modelling the
// disk-resident layout a conventional 1988 DBMS would use. Experiment E3
// contrasts scanning a PageFile (charging disk time per page) against
// scanning the main-memory Store; this quantifies the paper's core bet
// on "a very large main-memory as primary storage" (§2.1).
type PageFile struct {
	schema   *value.Schema
	pageSize int
	pages    [][]byte
	cur      []byte
	curN     int
	count    int
}

// DefaultPageSize matches the 4 KB blocks of the disk model.
const DefaultPageSize = 4096

// NewPageFile creates an empty page file; pageSize 0 takes the default.
func NewPageFile(schema *value.Schema, pageSize int) (*PageFile, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < 64 {
		return nil, fmt.Errorf("storage: page size %d too small", pageSize)
	}
	return &PageFile{schema: schema, pageSize: pageSize}, nil
}

// Schema returns the page file's tuple schema.
func (pf *PageFile) Schema() *value.Schema { return pf.schema }

// Append encodes a tuple onto the current page, sealing it when full.
func (pf *PageFile) Append(t value.Tuple) error {
	if len(t) != pf.schema.Len() {
		return fmt.Errorf("storage: tuple arity %d does not match schema %s", len(t), pf.schema)
	}
	enc := value.AppendTuple(nil, t)
	if len(enc) > pf.pageSize {
		return fmt.Errorf("storage: tuple of %d bytes exceeds page size %d", len(enc), pf.pageSize)
	}
	if len(pf.cur)+len(enc) > pf.pageSize {
		pf.seal()
	}
	pf.cur = append(pf.cur, enc...)
	pf.curN++
	pf.count++
	return nil
}

// AppendAll appends a batch of tuples.
func (pf *PageFile) AppendAll(ts []value.Tuple) error {
	for _, t := range ts {
		if err := pf.Append(t); err != nil {
			return err
		}
	}
	return nil
}

func (pf *PageFile) seal() {
	if pf.curN == 0 {
		return
	}
	pf.pages = append(pf.pages, pf.cur)
	pf.cur = nil
	pf.curN = 0
}

// Len returns the number of stored tuples.
func (pf *PageFile) Len() int { return pf.count }

// PageCount returns the number of pages, counting the open tail page.
func (pf *PageFile) PageCount() int {
	n := len(pf.pages)
	if pf.curN > 0 {
		n++
	}
	return n
}

// PageSize returns the configured page size.
func (pf *PageFile) PageSize() int { return pf.pageSize }

// Bytes returns the total encoded size.
func (pf *PageFile) Bytes() int {
	n := len(pf.cur)
	for _, p := range pf.pages {
		n += len(p)
	}
	return n
}

// ScanPages calls pageFn once per page (so the caller can charge one
// disk read) and fn once per decoded tuple. Iteration stops early if fn
// returns false.
func (pf *PageFile) ScanPages(pageFn func(pageBytes int), fn func(value.Tuple) bool) error {
	scanOne := func(page []byte) (bool, error) {
		if pageFn != nil {
			pageFn(len(page))
		}
		off := 0
		for off < len(page) {
			t, n, err := value.DecodeTuple(page[off:])
			if err != nil {
				return false, fmt.Errorf("storage: corrupt page: %w", err)
			}
			off += n
			if !fn(t) {
				return false, nil
			}
		}
		return true, nil
	}
	for _, page := range pf.pages {
		cont, err := scanOne(page)
		if err != nil || !cont {
			return err
		}
	}
	if pf.curN > 0 {
		if _, err := scanOne(pf.cur); err != nil {
			return err
		}
	}
	return nil
}
